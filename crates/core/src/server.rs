//! One backend server: dispatcher, worker pool, step executor, and the
//! coordinator role.
//!
//! Every simulated backend server runs (§IV-B, §V-B):
//!
//! * a **dispatcher thread** receiving fabric messages — traversal
//!   requests go into the local request queue ("it puts the received
//!   requests into a local queue and replies to the ancestor servers
//!   before processing these requests"), control messages are handled
//!   inline, and coordinator-role messages update this server's ledgers;
//! * a **worker pool** draining the queue; each pop yields every queued
//!   part for one vertex (one storage access amortized over all of them —
//!   execution merging), applies the plan's filters, expands edges, and
//!   accumulates output into the owning execution, which *flushes*
//!   (dispatches downstream `Visit`s / `SyncFrontier`s plus tracing
//!   events) when its last vertex request completes.
//!
//! The same server code runs all three engines; the differences are the
//! queue policy, the traversal-affiliate cache capacity, and whether a
//! traversal is driven by the asynchronous protocol or the synchronous
//! controller.

use crate::cache::{CacheDecision, TraversalCache};
use crate::coordinator::{CoordState, LedgerEvent, SyncState, TravelLedger};
use crate::engine::{EngineConfig, EngineKind};
use crate::faults::{CrashPoint, ServerFaults};
use crate::lang::{vertex_matches, Plan, Source};
use crate::lockorder::OrderedMutex;
use crate::message::{Msg, SyncExpect};
use crate::metrics::ServerMetrics;
use crate::queue::{FifoQueue, MergingQueue, ReqMode, RequestQueue, RequestState, WorkItem};
use crate::{ExecId, Token, Tokens, TravelId};
use gt_graph::{GraphPartition, Props, VertexId};
use gt_kvstore::wal::BlobLog;
use gt_kvstore::ReadView;
use gt_net::RecvError;
use gt_placement::SharedPlacement;
use gt_transport::Conduit;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cap on remembered retired travel ids; the smallest (oldest) are pruned
/// beyond this. Travel ids are monotonic, so stray in-flight messages can
/// only concern recent travels.
const MAX_RETIRED_TRAVELS: usize = 4096;

/// Dispatcher wake-up granularity when the reliable-delivery layer is on:
/// the receive loop uses a timed receive at this period so retransmission
/// deadlines are checked even while the inbox is quiet. With reliability
/// off the loop blocks indefinitely — the chaos-free fast path pays
/// nothing.
const RELAY_TICK: Duration = Duration::from_millis(2);

/// First retransmission delay; subsequent attempts back off exponentially
/// (`base * 2^(attempt-1)`) up to [`RELAY_RETRY_CAP`].
const RELAY_RETRY_BASE: Duration = Duration::from_millis(8);

/// Ceiling on the retransmission backoff.
const RELAY_RETRY_CAP: Duration = Duration::from_millis(500);

/// Give up retransmitting after this many attempts: by then the peer is
/// down for good and recovery belongs to the client's timeout-and-resubmit
/// path, not the transport.
const MAX_RELAY_ATTEMPTS: u64 = 32;

/// Append a compacting [`LedgerEvent::Snapshot`] after this many durable
/// events per hosted travel, bounding replay work after a coordinator
/// crash.
const LEDGER_SNAPSHOT_EVERY: u64 = 512;

/// Compact a travel's sent-journal whenever its created + terminated
/// entry count exceeds this: balanced (created ∧ terminated) pairs are
/// dropped first; if still over, the journal collapses to a sentinel that
/// forces a conservative re-drive on recovery (see [`send_travel`]).
const JOURNAL_COMPACT_EVERY: usize = 256;

/// Snapshot/delta key-value pairs per [`Msg::MigrateData`] chunk.
const MIGRATE_CHUNK_PAIRS: usize = 512;

/// Re-send a standing suspicion to the healer after this many heartbeat
/// periods without a verdict, so one lost `Suspect` report cannot strand
/// a dead primary.
const SUSPECT_RENUDGE_BEATS: u32 = 16;

/// A silence shorter than this many heartbeat periods never raises a
/// suspicion, whatever phi says: scheduler hiccups and load bursts on the
/// dispatcher thread produce tight-variance windows whose phi explodes on
/// the first real stall. The floor keeps the detector honest about how
/// fast a crash can plausibly be distinguished from jitter.
const SUSPECT_MIN_SILENCE_BEATS: u32 = 8;

/// Inter-arrival samples are clamped to this many heartbeat periods: a
/// survivor of a long partition or a restart would otherwise poison the
/// window with one enormous sample.
const SAMPLE_CLAMP_BEATS: u32 = 10;

/// Cold-start silence floor, in heartbeat periods: a peer that dies
/// before the phi window warms up (fewer than `min_samples` arrivals —
/// including one that never heartbeated at all) is suspected on plain
/// silence after this long. Deliberately far above the warm floor: with
/// no learned distribution the detector can only afford a verdict that
/// no plausible jitter could produce.
const SUSPECT_COLD_SILENCE_BEATS: u32 = 24;

/// Failure-detector tuning (the self-healing layer). Handed to every
/// server via [`ServerArgs::detection`]; `None` disables heartbeats,
/// suspicion tracking, and every other piece of the detector — the
/// static-cluster dormancy contract.
#[derive(Debug, Clone)]
pub struct DetectionConfig {
    /// Heartbeat period per server pair.
    pub heartbeat_every: Duration,
    /// Phi threshold above which a silent peer is reported suspect.
    pub suspicion_threshold: f64,
    /// Inter-arrival window length per peer.
    pub window: usize,
    /// Samples required before phi is computed at all (warm-up; the
    /// window first learns the link's real jitter — including injected
    /// chaos delay — before it is allowed to accuse anyone).
    pub min_samples: usize,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            heartbeat_every: Duration::from_millis(5),
            suspicion_threshold: 8.0,
            window: 32,
            min_samples: 8,
        }
    }
}

/// Everything needed to spawn one backend server.
pub struct ServerArgs {
    /// This server's id (also its fabric endpoint id).
    pub id: usize,
    /// Cluster size.
    pub n_servers: usize,
    /// This server's graph shard.
    pub partition: Arc<GraphPartition>,
    /// Transport endpoint (in-process fabric or socket mesh).
    pub endpoint: Conduit<Msg>,
    /// Engine configuration (shared across the cluster).
    pub engine: EngineConfig,
    /// This incarnation's epoch: 0 at first boot, bumped on every
    /// crash-restart. Stamped on outgoing relays (fencing) and folded
    /// into the exec/token counters so ids never collide across
    /// incarnations.
    pub epoch: u64,
    /// Counters to adopt; `None` allocates fresh ones. A restart passes
    /// the pre-crash server's metrics so crash/recovery counts accumulate
    /// across incarnations.
    pub metrics: Option<Arc<ServerMetrics>>,
    /// Scripted crash point to arm for this incarnation (restarts pass
    /// `None` — crash points are one-shot).
    pub crash_after: Option<CrashPoint>,
    /// Where to persist the durable travel-ledger event stream this
    /// server appends while acting as a coordinator. `None` (or
    /// reliability off) disables durable ledgers — failover then
    /// recovers purely from re-announced server journals.
    pub ledger_path: Option<PathBuf>,
    /// This server's view of the versioned placement map (updated only by
    /// epoch-fenced [`Msg::PlacementUpdate`] broadcasts).
    pub placement: Arc<SharedPlacement>,
    /// Cluster replication factor; ≥ 2 turns on write fan-out to replica
    /// holders and travel-ledger blob shipping to ring peers.
    pub replication: usize,
    /// Failure-detector tuning; `None` (the default cluster config)
    /// disables the detector entirely.
    pub detection: Option<DetectionConfig>,
}

/// Handle to a running server's threads and instrumentation.
pub struct ServerHandle {
    /// Instrumentation counters.
    pub metrics: Arc<ServerMetrics>,
    /// The shard (for I/O stats and cache drops between runs).
    pub partition: Arc<GraphPartition>,
    /// Set when the server executed a (scripted or injected) crash: its
    /// threads have exited and its in-memory state is gone. The endpoint
    /// survives, so a restart can reuse the same fabric address.
    pub crashed: Arc<AtomicBool>,
    dispatcher: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Wait for the server's threads to exit (send [`Msg::Shutdown`] first).
    pub fn join(self) {
        // gt-lint: allow(panic, "shutdown path: a panicked server thread must surface, not vanish")
        self.dispatcher.join().expect("dispatcher panicked");
        for w in self.workers {
            // gt-lint: allow(panic, "shutdown path: a panicked server thread must surface, not vanish")
            w.join().expect("worker panicked");
        }
    }
}

#[derive(Debug)]
struct TokenRecord {
    depth: u16,
    vertex: VertexId,
    released: bool,
}

#[derive(Debug, Default)]
struct TokenRegistry {
    /// (travel, depth, vertex) → token id (reuse on re-registration).
    by_key: HashMap<(TravelId, u16, VertexId), u64>,
    /// (travel, token id) → record.
    records: HashMap<(TravelId, u64), TokenRecord>,
}

#[derive(Debug, Default)]
struct FrontierBuf {
    received: u64,
    expected: Option<u64>,
    items: Vec<(VertexId, Tokens)>,
    done: bool,
}

#[derive(Debug, Default)]
struct OriginBuf {
    received: u64,
    expected: Option<u64>,
    tokens: Vec<u64>,
    done: bool,
}

/// Per-travel synchronous-engine buffers on one server.
#[derive(Debug)]
struct SyncBufs {
    plan: Arc<Plan>,
    coordinator: usize,
    frontier: HashMap<u16, FrontierBuf>,
    origin: OriginBuf,
}

/// Sync-engine traffic that arrived before the travel's first `SyncStart`
/// created its [`SyncBufs`]. A peer's frontier rides a different link than
/// the coordinator's `SyncStart`, so nothing orders them; the window is
/// routinely hit after a failover (a restarted server has no buffers, and
/// the handoff clears every survivor's). Dropping such traffic would leave
/// the step barrier under-filled forever.
#[derive(Debug, Default)]
struct EarlySync {
    frontier: Vec<(u16, Vec<(VertexId, Tokens)>)>,
    origin_tokens: Vec<u64>,
}

/// Bound on distinct travels with stashed early sync traffic (oldest
/// travel id evicted first; reclaims stashes for travels this server
/// never starts).
const MAX_EARLY_SYNC_TRAVELS: usize = 32;

/// What the dispatcher should do after handling one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopCtl {
    Continue,
    Shutdown,
    /// Die abruptly: drop all in-memory state, leave the endpoint alive.
    Crash,
}

/// One unacked outgoing relay awaiting acknowledgment or retransmission.
struct PendingRelay {
    msg: Msg,
    /// Travel-epoch the message was sent under (restamped on retransmit
    /// so the receiver's failover fence judges the original send).
    tepoch: u64,
    attempts: u64,
    next_retry: Instant,
}

/// Sender-side reliable-delivery state.
#[derive(Default)]
struct RelayOut {
    /// Next sequence number per `(travel, destination)` stream.
    next_seq: HashMap<(TravelId, usize), u64>,
    /// `(travel, destination, seq)` → unacked message.
    pending: BTreeMap<(TravelId, usize, u64), PendingRelay>,
}

/// Receiver-side state of one `(travel, sender)` stream: deliver strictly
/// in sequence order, holding out-of-order arrivals until the gap fills.
/// In-order delivery is what preserves the protocol's FIFO-dependent
/// pairs (`Results` before `ExecTerminated` on the same link) under drop
/// and reorder chaos.
///
/// Streams are *generational*: every `CoordHandoff` restarts the sender's
/// sequence numbering at 1 under the bumped travel-epoch, so the
/// receiver tracks which generation (`gen`) its cursor belongs to.
/// Without this, a pre-failover retransmit landing on a freshly restarted
/// receiver can squat on (or consume) a sequence number the post-failover
/// stream will reuse, and the live message at that number is then
/// silently eaten as a "redelivery" — already acked, never retransmitted,
/// wedging the travel.
struct InStream {
    /// Travel-epoch generation the cursor belongs to. Messages stamped
    /// older are acked-and-dropped without touching the cursor; a newer
    /// stamp resets the stream.
    gen: u64,
    next_seq: u64,
    /// seq → (travel-epoch stamp, message); the stamp is judged at
    /// delivery time, after the in-order pop, so a slow-to-hand-off
    /// sender's still-current-generation traffic cannot desynchronize
    /// stream cursors.
    buffered: BTreeMap<u64, (u64, Msg)>,
}

/// Scripted-crash trigger armed for this incarnation.
struct CrashTrigger {
    point: CrashPoint,
    counted: AtomicU64,
}

/// What this server has reported toward a travel's coordinator (reliable
/// mode only). After a coordinator crash, the failover protocol asks
/// every server to re-announce its journal to the successor, recovering
/// tracing state that never reached the durable ledger log.
#[derive(Debug, Default)]
struct SentJournal {
    created: Vec<(ExecId, u16)>,
    terminated: Vec<(ExecId, Vec<(ExecId, u16)>)>,
    results: Vec<(u16, VertexId)>,
}

/// Successor-side state of one in-progress ledger takeover: the replayed
/// durable stream plus the journals re-announced so far, merged into a
/// scratch ledger. When every live server has re-announced, the
/// successor either completes the travel outright (the scratch ledger is
/// already done — the crash hit during result assembly) or re-drives the
/// traversal from the source under the bumped travel-epoch.
struct RecoveryState {
    plan: Arc<Plan>,
    client: usize,
    epoch: u64,
    scratch: TravelLedger,
    awaiting: HashSet<usize>,
}

/// A journal re-announcement that arrived before its `CoordRecover` seed.
/// The client's recover message and a peer's re-announcement travel on
/// different links, so nothing orders them; dropping the early arrival
/// would leave the takeover barrier waiting on that server forever.
struct EarlyAnnounce {
    epoch: u64,
    server: usize,
    created: Vec<(ExecId, u16)>,
    terminated: Vec<(ExecId, Vec<(ExecId, u16)>)>,
    results: Vec<(u16, VertexId)>,
}

/// Bound on distinct travels with stashed early re-announcements (evicts
/// oldest travel id first; stale stashes for travels this server never
/// recovers are reclaimed here).
const MAX_EARLY_ANNOUNCE_TRAVELS: usize = 32;

/// One ingest request whose acknowledgment is withheld until every
/// replica holder has confirmed the synchronous write fan-out.
struct PendingIngest {
    client: usize,
    applied: usize,
    remaining: usize,
    /// Primary write-sequence watermark of this batch, echoed on the
    /// `IngestAck` so the client can form read barriers.
    wseq: u64,
}

/// Source-side state of one outgoing shard migration. Writes that touch
/// the partition while the snapshot ships are trapped here: before the
/// cutover seals the trap they accumulate as a delta (phase-1 catch-up);
/// after sealing they are shipped to the target immediately.
struct MigOut {
    partition: usize,
    to: usize,
    client: usize,
    delta_vids: BTreeSet<VertexId>,
    sealed: bool,
    /// This flow restores a lost replica (self-healing) rather than
    /// moving a primary: chunks ship as [`Msg::ReReplicateData`] and
    /// count the re-replication counters instead of the migration ones.
    rerep: bool,
}

struct Shared {
    id: usize,
    n_servers: usize,
    engine_kind: EngineKind,
    partition: Arc<GraphPartition>,
    ep: Conduit<Msg>,
    queue: Arc<dyn RequestQueue>,
    cache: TraversalCache,
    metrics: Arc<ServerMetrics>,
    faults: ServerFaults,
    exec_ctr: AtomicU64,
    token_ctr: AtomicU64,
    tokens: OrderedMutex<TokenRegistry>,
    coords: OrderedMutex<HashMap<TravelId, CoordState>>,
    /// Sync traffic that beat the travel's first `SyncStart` here; adopted
    /// into [`Shared::sync_bufs`] when the buffers are created.
    early_sync: OrderedMutex<BTreeMap<TravelId, EarlySync>>,
    sync_bufs: OrderedMutex<HashMap<TravelId, SyncBufs>>,
    /// Travels aborted/cancelled/completed on this server: stray
    /// in-flight messages for them are dropped instead of re-creating
    /// queue or cache state that nothing would ever clean up again.
    retired: OrderedMutex<BTreeSet<TravelId>>,
    /// This incarnation's epoch (stamped on outgoing relays).
    epoch: u64,
    /// Whether inter-server data-plane sends ride the reliable layer.
    reliable: bool,
    /// Flipped once on crash; gates late worker sends and tells the
    /// cluster the threads are gone.
    crashed: Arc<AtomicBool>,
    relay_out: OrderedMutex<RelayOut>,
    /// `(travel, sender)` → in-order receive stream.
    relay_in: OrderedMutex<HashMap<(TravelId, usize), InStream>>,
    /// Highest epoch seen per peer; relays below it are fenced off.
    peer_epoch: OrderedMutex<HashMap<usize, u64>>,
    crash_trigger: Option<CrashTrigger>,
    /// Durable ledger event log (coordinator role; reliable mode with a
    /// configured path only).
    ledger: Option<OrderedMutex<BlobLog>>,
    /// Per-travel sent-journals (reliable mode only).
    journal: OrderedMutex<HashMap<TravelId, SentJournal>>,
    /// Current travel-epoch per travel (only populated by failover
    /// handoffs); relays stamped below it carry stale pre-failover work.
    travel_epoch: OrderedMutex<HashMap<TravelId, u64>>,
    /// In-progress ledger takeovers on this server (as successor).
    recovering: OrderedMutex<HashMap<TravelId, RecoveryState>>,
    /// Re-announcements that raced ahead of their `CoordRecover` seed,
    /// replayed into the barrier once the recovery state exists.
    early_announce: OrderedMutex<BTreeMap<TravelId, Vec<EarlyAnnounce>>>,
    /// This server's placement-map view (see [`ServerArgs::placement`]).
    /// Leaf `RwLock` internally — readable from any lock rank.
    placement: Arc<SharedPlacement>,
    /// Cluster replication factor.
    replication: usize,
    /// Directory holding this server's store (for replica ledger files);
    /// `None` for store-less servers.
    ledger_dir: Option<PathBuf>,
    /// req id → ingest awaiting replica write acks.
    pending_ingest: OrderedMutex<HashMap<u64, PendingIngest>>,
    /// migration id → outgoing migration (source side).
    migrations: OrderedMutex<HashMap<TravelId, MigOut>>,
    /// Replicated copies of peers' travel-ledger streams, one blob log
    /// per origin server (`travel-ledger-replica-<origin>.log`).
    replica_ledgers: OrderedMutex<HashMap<usize, BlobLog>>,
    /// Failure-detector tuning; `None` keeps the detector fully dormant.
    detection: Option<DetectionConfig>,
    /// Route frontier reads to a deterministic holder spread instead of
    /// always the primary (see [`EngineConfig::replica_reads`]).
    replica_reads: bool,
    /// This server's write-sequence watermark as a primary: bumped once
    /// per locally applied ingest and carried on [`Msg::ReplicateWrite`]
    /// and [`Msg::IngestAck`]. Lock-free — read from worker and
    /// dispatcher threads at any lock rank.
    wseq: AtomicU64,
    /// Per-origin replication watermark: `applied_w[o]` is the highest
    /// `wseq` from primary `o` whose write this server has applied.
    /// Indexed by server id; the read-your-replication barrier compares
    /// a client-supplied barrier against this before serving a replica
    /// read.
    applied_w: Vec<AtomicU64>,
}

impl Shared {
    fn mark_retired(&self, travel: TravelId) {
        let mut r = self.retired.lock();
        r.insert(travel);
        while r.len() > MAX_RETIRED_TRAVELS {
            r.pop_first();
        }
    }

    fn is_retired(&self, travel: TravelId) -> bool {
        self.retired.lock().contains(&travel)
    }

    /// Travel-epoch this server believes `travel` runs under (0 until a
    /// failover handoff bumps it). Lock-free no-op with reliability off.
    fn travel_epoch_of(&self, travel: TravelId) -> u64 {
        if !self.reliable {
            return 0;
        }
        self.travel_epoch.lock().get(&travel).copied().unwrap_or(0)
    }
}

/// Send a data-plane message for `travel` to server `to`, stamped with
/// the travel-epoch `tepoch` the sender executed under. With the
/// reliable layer on, the message is wrapped in a sequenced [`Msg::Relay`]
/// and registered for retransmission until acked; otherwise it goes out
/// raw, exactly as before the chaos layer existed.
///
/// Reliable coordinator-bound tracing messages are additionally recorded
/// in the per-travel sent-journal — after a coordinator crash, the
/// journal is re-announced to the successor so it can rebuild tracing
/// state that never reached the durable ledger. Only current-epoch sends
/// are journaled: a stale worker flushing after a failover handoff must
/// not pollute the journal of the re-driven execution.
fn send_travel(sh: &Arc<Shared>, to: usize, travel: TravelId, tepoch: u64, msg: Msg) {
    // SeqCst pairs with the crash path's SeqCst store: once the kill is
    // ordered, no thread of the dying incarnation slips another message
    // out (a Relaxed load could see the flag late and leak a send from a
    // server the test harness already declared dead).
    if sh.crashed.load(Ordering::SeqCst) {
        return; // a dying server sends nothing
    }
    if !sh.reliable {
        let _ = sh.ep.send(to, msg);
        return;
    }
    if tepoch < sh.travel_epoch_of(travel) {
        // A worker flushing for a superseded execution after the handoff
        // already reset this travel's streams: the receiver would fence
        // the message anyway, but letting it claim a sequence number in
        // the *new* stream generation would leave the receiver waiting on
        // that number forever once it drops the stale payload.
        return;
    }
    if tepoch == sh.travel_epoch_of(travel) {
        let mut journal = sh.journal.lock();
        let j = journal.entry(travel).or_default();
        let journaled = match &msg {
            Msg::ExecCreated { exec, depth, .. } => {
                j.created.push((*exec, *depth));
                true
            }
            Msg::ExecTerminated { exec, children, .. } => {
                j.terminated.push((*exec, children.clone()));
                true
            }
            Msg::Results { items, .. } => {
                j.results.extend(items.iter().copied());
                false // results are never compacted; no ceiling to track
            }
            // Only ledger-bearing traffic is journaled for re-announce;
            // listed explicitly so a new variant forces a decision here.
            Msg::Submit { .. }
            | Msg::Abort { .. }
            | Msg::ProgressQuery { .. }
            | Msg::ProgressReport { .. }
            | Msg::TravelDone { .. }
            | Msg::Cancel { .. }
            | Msg::CancelAck { .. }
            | Msg::SourceScan { .. }
            | Msg::Visit { .. }
            | Msg::OriginSatisfied { .. }
            | Msg::SyncStart { .. }
            | Msg::SyncFrontier { .. }
            | Msg::SyncOrigin { .. }
            | Msg::SyncStepDone { .. }
            | Msg::Ingest { .. }
            | Msg::IngestAck { .. }
            | Msg::GetVertex { .. }
            | Msg::VertexReply { .. }
            | Msg::Relay { .. }
            | Msg::RelayAck { .. }
            | Msg::CoordRecover { .. }
            | Msg::CoordHandoff { .. }
            | Msg::ReAnnounce { .. }
            | Msg::RecoverDone { .. }
            | Msg::PlacementUpdate { .. }
            | Msg::PlacementAck { .. }
            | Msg::ReplicateWrite { .. }
            | Msg::ReplicateAck { .. }
            | Msg::ReplicateLedger { .. }
            | Msg::MigrateBegin { .. }
            | Msg::MigrateData { .. }
            | Msg::MigrateApplied { .. }
            | Msg::MigrateCutover { .. }
            | Msg::MigrateFinish { .. }
            | Msg::Heartbeat { .. }
            | Msg::Suspect { .. }
            | Msg::SuspectAck { .. }
            | Msg::ReReplicateBegin { .. }
            | Msg::ReReplicateData { .. }
            | Msg::ReReplicateCutover { .. }
            | Msg::ReReplicateFinish { .. }
            | Msg::Crash
            | Msg::Shutdown => false,
        };
        if journaled {
            let live = j.created.len() + j.terminated.len();
            sh.metrics
                .journal_peak_entries
                .fetch_max(live as u64, Ordering::Relaxed);
            if live > JOURNAL_COMPACT_EVERY {
                compact_journal(sh, j);
            }
        }
    }
    let seq = {
        let mut out = sh.relay_out.lock();
        let ctr = out.next_seq.entry((travel, to)).or_insert(1);
        let seq = *ctr;
        *ctr += 1;
        out.pending.insert(
            (travel, to, seq),
            PendingRelay {
                msg: msg.clone(),
                tepoch,
                attempts: 1,
                next_retry: Instant::now() + RELAY_RETRY_BASE,
            },
        );
        seq
    };
    // The send itself happens outside the lock: two workers may invert
    // their wire order, which the receiver's reorder buffer absorbs.
    let _ = sh.ep.send(
        to,
        Msg::Relay {
            travel,
            from: sh.id,
            epoch: sh.epoch,
            tepoch,
            seq,
            attempt: 1,
            inner: Box::new(msg),
        },
    );
}

/// Bound a travel's sent-journal (caller holds the journal lock and has
/// established the entry count exceeds [`JOURNAL_COMPACT_EVERY`]).
///
/// Two stages, both recovery-safe:
/// 1. Drop balanced pairs — executions this journal both created and
///    terminated. Their children were journaled as separate created
///    entries before the parent's termination (flush order), so nothing
///    the pair references is lost; a successor's merged scratch ledger
///    simply never hears of the completed exec.
/// 2. If the journal is still over budget (long fan-out travels keep
///    created entries for remotely-terminating children indefinitely),
///    collapse it to a single sentinel created-entry that can never
///    terminate. A recovery that merges the sentinel sees an eternally
///    live execution and re-drives the traversal from its source —
///    always correct (results are dedup'd), merely slower than a
///    direct completion. Created entries must never be dropped without
///    the sentinel: an under-reported journal could make the scratch
///    ledger look complete while work is still in flight.
fn compact_journal(sh: &Arc<Shared>, j: &mut SentJournal) {
    let done: HashSet<ExecId> = j.terminated.iter().map(|(e, _)| *e).collect();
    let both: HashSet<ExecId> = j
        .created
        .iter()
        .map(|(e, _)| *e)
        .filter(|e| done.contains(e))
        .collect();
    j.created.retain(|(e, _)| !both.contains(e));
    j.terminated.retain(|(e, _)| !both.contains(e));
    if j.created.len() + j.terminated.len() > JOURNAL_COMPACT_EVERY {
        j.created.clear();
        j.terminated.clear();
        j.created.push((alloc_exec(sh), 0));
    }
    sh.metrics
        .journal_compactions
        .fetch_add(1, Ordering::Relaxed);
}

/// Resend every pending relay whose retry deadline passed, with capped
/// exponential backoff; entries that exhausted [`MAX_RELAY_ATTEMPTS`] are
/// dropped (the client's timeout owns recovery from there).
fn retransmit_due(sh: &Arc<Shared>) {
    let now = Instant::now();
    let resend: Vec<(usize, TravelId, u64, u64, u64, Msg)> = {
        let mut out = sh.relay_out.lock();
        let mut resend = Vec::new();
        let mut dead = Vec::new();
        for (&(travel, to, seq), p) in out.pending.iter_mut() {
            if p.next_retry > now {
                continue;
            }
            if p.attempts >= MAX_RELAY_ATTEMPTS {
                dead.push((travel, to, seq));
                continue;
            }
            p.attempts += 1;
            let shift = (p.attempts - 1).min(16) as u32;
            let backoff = RELAY_RETRY_BASE
                .checked_mul(1u32 << shift.min(8))
                .unwrap_or(RELAY_RETRY_CAP)
                .min(RELAY_RETRY_CAP);
            p.next_retry = now + backoff;
            resend.push((to, travel, seq, p.tepoch, p.attempts, p.msg.clone()));
        }
        for k in dead {
            out.pending.remove(&k);
        }
        resend
    };
    if resend.is_empty() {
        return;
    }
    sh.metrics
        .relay_retries
        .fetch_add(resend.len() as u64, Ordering::Relaxed);
    for (to, travel, seq, tepoch, attempt, msg) in resend {
        let _ = sh.ep.send(
            to,
            Msg::Relay {
                travel,
                from: sh.id,
                epoch: sh.epoch,
                tepoch,
                seq,
                attempt,
                inner: Box::new(msg),
            },
        );
    }
}

/// Spawn a server's dispatcher and worker threads.
pub fn spawn(args: ServerArgs) -> ServerHandle {
    let queue: Arc<dyn RequestQueue> = if args.engine.merging_queue_enabled() {
        Arc::new(MergingQueue::with_fairness(
            args.engine.fair_cross_travel_enabled(),
        ))
    } else {
        Arc::new(FifoQueue::new())
    };
    let metrics = args.metrics.unwrap_or_default();
    let crashed = Arc::new(AtomicBool::new(false));
    // Seed the id counters from the epoch so a restarted server can never
    // reuse a pre-crash ExecId or token id (48-bit counter space, high
    // byte = epoch).
    debug_assert!(args.epoch < (1 << 8), "epoch exceeds counter headroom");
    let ctr_seed = (args.epoch << 40) | 1;
    let shared = Arc::new(Shared {
        id: args.id,
        n_servers: args.n_servers,
        engine_kind: args.engine.kind,
        partition: args.partition.clone(),
        ep: args.endpoint,
        queue,
        cache: TraversalCache::new(
            args.engine.effective_cache_capacity(),
            args.engine.cache_reserve_per_travel,
        ),
        metrics: metrics.clone(),
        faults: args.engine.faults.for_server(args.id),
        exec_ctr: AtomicU64::new(ctr_seed),
        token_ctr: AtomicU64::new(ctr_seed),
        // Lock-order ranks (see `lockorder`): acquisitions within a thread
        // must be in strictly increasing rank. Ranks are spaced by 10 so
        // future locks can slot in without renumbering.
        tokens: OrderedMutex::new(70, "tokens", TokenRegistry::default()),
        coords: OrderedMutex::new(90, "coords", HashMap::new()),
        early_sync: OrderedMutex::new(75, "early_sync", BTreeMap::new()),
        sync_bufs: OrderedMutex::new(80, "sync_bufs", HashMap::new()),
        retired: OrderedMutex::new(10, "retired", BTreeSet::new()),
        epoch: args.epoch,
        reliable: args.engine.reliable_delivery_enabled(),
        crashed: crashed.clone(),
        relay_out: OrderedMutex::new(40, "relay_out", RelayOut::default()),
        relay_in: OrderedMutex::new(60, "relay_in", HashMap::new()),
        peer_epoch: OrderedMutex::new(50, "peer_epoch", HashMap::new()),
        crash_trigger: args.crash_after.map(|point| CrashTrigger {
            point,
            counted: AtomicU64::new(0),
        }),
        ledger: if args.engine.reliable_delivery_enabled() {
            args.ledger_path
                .as_ref()
                .and_then(|p| BlobLog::open(p, false).ok())
                .map(|log| OrderedMutex::new(110, "ledger", log))
        } else {
            None
        },
        journal: OrderedMutex::new(30, "journal", HashMap::new()),
        travel_epoch: OrderedMutex::new(20, "travel_epoch", HashMap::new()),
        recovering: OrderedMutex::new(100, "recovering", HashMap::new()),
        early_announce: OrderedMutex::new(95, "early_announce", BTreeMap::new()),
        placement: args.placement,
        replication: args.replication,
        ledger_dir: args
            .ledger_path
            .as_ref()
            .and_then(|p| p.parent().map(|d| d.to_path_buf())),
        pending_ingest: OrderedMutex::new(65, "pending_ingest", HashMap::new()),
        migrations: OrderedMutex::new(66, "migrations", HashMap::new()),
        replica_ledgers: OrderedMutex::new(115, "replica_ledgers", HashMap::new()),
        detection: args.detection,
        replica_reads: args.engine.replica_reads,
        // Epoch-seeded like the id counters: a restarted primary's fresh
        // write sequences stay above every pre-crash barrier the client
        // may still hold.
        wseq: AtomicU64::new(ctr_seed),
        applied_w: (0..args.n_servers).map(|_| AtomicU64::new(0)).collect(),
    });
    let mut workers = Vec::with_capacity(args.engine.workers_per_server);
    for w in 0..args.engine.workers_per_server {
        let sh = shared.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("gt-s{}-w{}", args.id, w))
                .spawn(move || worker_loop(&sh))
                // gt-lint: allow(panic, "construction-time: a server that cannot spawn threads cannot run")
                .expect("spawn worker"),
        );
    }
    let sh = shared.clone();
    let dispatcher = std::thread::Builder::new()
        .name(format!("gt-s{}-dispatch", args.id))
        .spawn(move || dispatcher_loop(&sh))
        // gt-lint: allow(panic, "construction-time: a server that cannot spawn threads cannot run")
        .expect("spawn dispatcher");
    ServerHandle {
        metrics,
        partition: args.partition,
        crashed,
        dispatcher,
        workers,
    }
}

// ================================================== failure detection

/// Per-peer arrival history for the phi-accrual detector.
struct PeerStat {
    /// Last heartbeat arrival (`None` until the first one lands).
    last: Option<Instant>,
    /// Recent inter-arrival gaps, milliseconds.
    intervals: std::collections::VecDeque<f64>,
    /// A suspicion currently stands for this peer.
    suspected: bool,
    /// When the standing suspicion was last reported to the healer.
    last_report: Instant,
}

/// Dispatcher-thread-local failure detector: sends heartbeats, tracks
/// per-peer inter-arrival statistics, and reports phi-threshold crossings
/// to the healer at the client endpoint. Lives on the dispatcher's stack —
/// no lock rank, no sharing.
struct Detector {
    cfg: DetectionConfig,
    peers: Vec<PeerStat>,
    seq: u64,
    last_beat: Instant,
    /// When this detector came up — the silence reference for peers that
    /// have never heartbeated.
    start: Instant,
}

impl Detector {
    fn new(cfg: DetectionConfig, n_servers: usize, now: Instant) -> Self {
        let peers = (0..n_servers)
            .map(|_| PeerStat {
                last: None,
                intervals: std::collections::VecDeque::with_capacity(cfg.window),
                suspected: false,
                last_report: now,
            })
            .collect();
        Detector {
            cfg,
            peers,
            seq: 0,
            last_beat: now,
            start: now,
        }
    }

    /// Phi-accrual suspicion level for a silence of `elapsed_ms`: the
    /// number of decades of improbability given the learned inter-arrival
    /// distribution, `phi = (elapsed − mean) / (σ · ln 10)`. Requires
    /// `min_samples` of warm-up so chaos-injected delay jitter is part of
    /// the learned distribution, not a surprise.
    fn phi(&self, peer: usize, elapsed_ms: f64) -> f64 {
        let w = &self.peers[peer].intervals;
        if w.len() < self.cfg.min_samples.max(2) {
            return 0.0;
        }
        let n = w.len() as f64;
        let mean = w.iter().sum::<f64>() / n;
        let var = w.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        // Floor the deviation: a perfectly regular arrival stream would
        // otherwise make any hiccup look infinitely improbable.
        let std = var.sqrt().max(mean / 4.0).max(0.25);
        if elapsed_ms <= mean {
            0.0
        } else {
            (elapsed_ms - mean) / (std * std::f64::consts::LN_10)
        }
    }

    /// Record a heartbeat arrival from `from`; clears any standing
    /// suspicion (the peer is demonstrably alive — or back).
    fn on_heartbeat(&mut self, from: usize, now: Instant) {
        if from >= self.peers.len() {
            return;
        }
        let clamp = self.cfg.heartbeat_every.as_secs_f64() * 1e3 * SAMPLE_CLAMP_BEATS as f64;
        let p = &mut self.peers[from];
        if let Some(last) = p.last {
            let gap = (now - last).as_secs_f64() * 1e3;
            p.intervals.push_back(gap.min(clamp));
            while p.intervals.len() > self.cfg.window {
                p.intervals.pop_front();
            }
        }
        p.last = Some(now);
        p.suspected = false;
    }

    /// The healer's verdict on a reported suspect. A rejection (`false`)
    /// means the peer is provably alive: reset the window so the detector
    /// re-learns the link before accusing again.
    fn on_verdict(&mut self, suspect: usize, confirmed: bool, now: Instant) {
        if suspect >= self.peers.len() {
            return;
        }
        let p = &mut self.peers[suspect];
        if !confirmed {
            p.suspected = false;
            p.intervals.clear();
            p.last = Some(now);
        }
        // Confirmed: keep `suspected` standing so the renudge stays quiet;
        // the restarted peer's first heartbeat clears it.
    }
}

/// One detector tick: send heartbeats when the period elapsed, then judge
/// every silent peer. Suspicions go to the healer at the client endpoint
/// (fabric id `n_servers`); the healer ground-truths them against actual
/// process liveness and answers with [`Msg::SuspectAck`].
fn detector_tick(sh: &Arc<Shared>, det: &mut Detector) {
    let now = Instant::now();
    if now - det.last_beat < det.cfg.heartbeat_every {
        return;
    }
    det.last_beat = now;
    det.seq += 1;
    let load = sh.metrics.real_io_visits.load(Ordering::Relaxed);
    for peer in 0..sh.n_servers {
        if peer == sh.id {
            continue;
        }
        let _ = sh.ep.send(
            peer,
            Msg::Heartbeat {
                from: sh.id,
                seq: det.seq,
                load,
            },
        );
        sh.metrics.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
    }
    let hb_ms = det.cfg.heartbeat_every.as_secs_f64() * 1e3;
    let min_silence = hb_ms * SUSPECT_MIN_SILENCE_BEATS as f64;
    let renudge = det.cfg.heartbeat_every * SUSPECT_RENUDGE_BEATS;
    let threshold = det.cfg.suspicion_threshold;
    let cold_silence = hb_ms * SUSPECT_COLD_SILENCE_BEATS as f64;
    for peer in 0..sh.n_servers {
        if peer == sh.id {
            continue;
        }
        // Silence reference: last heartbeat, or detector start for a peer
        // never heard from (it may have died before its first beat).
        let last = det.peers[peer].last.unwrap_or(det.start);
        let warm = det.peers[peer].intervals.len() >= det.cfg.min_samples.max(2);
        let elapsed_ms = (now - last).as_secs_f64() * 1e3;
        if det.peers[peer].suspected {
            if now - det.peers[peer].last_report >= renudge {
                // Re-report: one lost Suspect must not strand the peer.
                det.peers[peer].last_report = now;
                let _ = sh.ep.send(
                    sh.n_servers,
                    Msg::Suspect {
                        from: sh.id,
                        suspect: peer,
                    },
                );
            }
            continue;
        }
        let fire = if warm {
            elapsed_ms >= min_silence && det.phi(peer, elapsed_ms) > threshold
        } else {
            // Cold window (peer died mid-warm-up): plain silence, with a
            // floor high enough that no plausible jitter produces it.
            elapsed_ms >= cold_silence
        };
        if fire {
            det.peers[peer].suspected = true;
            det.peers[peer].last_report = now;
            sh.metrics.suspicions_raised.fetch_add(1, Ordering::Relaxed);
            let _ = sh.ep.send(
                sh.n_servers,
                Msg::Suspect {
                    from: sh.id,
                    suspect: peer,
                },
            );
        }
    }
}

// ===================================================== dispatcher side

fn dispatcher_loop(sh: &Arc<Shared>) {
    let mut detector = sh
        .detection
        .clone()
        .map(|cfg| Detector::new(cfg, sh.n_servers, Instant::now()));
    let timed = sh.reliable || detector.is_some();
    let tick = detector
        .as_ref()
        .map(|d| (d.cfg.heartbeat_every / 2).max(Duration::from_micros(500)))
        .unwrap_or(RELAY_TICK)
        .min(RELAY_TICK);
    let ctl = loop {
        let env = if timed {
            // Timed receive so retransmission and heartbeat deadlines run
            // while the inbox is quiet.
            match sh.ep.recv_timeout(tick) {
                Ok(env) => Some(env),
                Err(RecvError::Timeout) => None,
                Err(RecvError::Closed) => break LoopCtl::Shutdown,
            }
        } else {
            match sh.ep.recv() {
                Ok(env) => Some(env),
                Err(_) => break LoopCtl::Shutdown,
            }
        };
        if let Some(env) = env {
            // Detector traffic is absorbed here: its state lives on this
            // thread's stack, out of reach of `handle_msg`.
            let msg = match (env.msg, detector.as_mut()) {
                (Msg::Heartbeat { from, .. }, Some(det)) => {
                    sh.metrics.heartbeats_recv.fetch_add(1, Ordering::Relaxed);
                    det.on_heartbeat(from, Instant::now());
                    None
                }
                (
                    Msg::SuspectAck {
                        suspect, confirmed, ..
                    },
                    Some(det),
                ) => {
                    if !confirmed {
                        sh.metrics.false_suspicions.fetch_add(1, Ordering::Relaxed);
                    }
                    det.on_verdict(suspect, confirmed, Instant::now());
                    None
                }
                (msg, _) => Some(msg),
            };
            if let Some(msg) = msg {
                match dispatch_msg(sh, msg) {
                    LoopCtl::Continue => {}
                    other => break other,
                }
            }
        }
        if sh.reliable {
            retransmit_due(sh);
        }
        if let Some(det) = detector.as_mut() {
            detector_tick(sh, det);
        }
    };
    if ctl == LoopCtl::Crash {
        // Abrupt death: the queued work vanishes with the process; the
        // workers exit on the closed queue; `Shared` (cache, tokens,
        // coordinator ledgers, relay state) drops with the threads.
        sh.crashed.store(true, Ordering::SeqCst);
        sh.metrics.crashes.fetch_add(1, Ordering::Relaxed);
        sh.queue.clear_all();
    }
    sh.queue.close();
}

/// Top-level message dispatch: transport-layer messages are handled here,
/// everything else goes through [`handle_msg`].
fn dispatch_msg(sh: &Arc<Shared>, msg: Msg) -> LoopCtl {
    match msg {
        Msg::Relay {
            travel,
            from,
            epoch,
            tepoch,
            seq,
            inner,
            ..
        } => handle_relay(sh, travel, from, epoch, tepoch, seq, *inner),
        Msg::RelayAck {
            travel,
            server,
            seq,
            ..
        } => {
            sh.relay_out.lock().pending.remove(&(travel, server, seq));
            LoopCtl::Continue
        }
        other => handle_msg(sh, other),
    }
}

/// Receive one relayed message: fence stale epochs, ack, dedupe, and
/// deliver the stream strictly in sequence order.
fn handle_relay(
    sh: &Arc<Shared>,
    travel: TravelId,
    from: usize,
    epoch: u64,
    tepoch: u64,
    seq: u64,
    inner: Msg,
) -> LoopCtl {
    {
        let mut peers = sh.peer_epoch.lock();
        let known = peers.entry(from).or_insert(epoch);
        if epoch < *known {
            // Pre-crash incarnation of the peer: discard without acking —
            // the restarted peer has no pending entry for it anyway.
            sh.metrics
                .stale_epoch_dropped
                .fetch_add(1, Ordering::Relaxed);
            return LoopCtl::Continue;
        }
        if epoch > *known {
            // The peer restarted: its streams start over at seq 1.
            *known = epoch;
            sh.relay_in.lock().retain(|&(_, f), _| f != from);
        }
    }
    // Ack before anything else — a deduped redelivery must still be
    // acked, or a lost ack would make the sender retry forever. The ack
    // itself faces chaos; the sender's retransmit covers a lost ack.
    let _ = sh.ep.send(
        from,
        Msg::RelayAck {
            travel,
            server: sh.id,
            seq,
            attempt: 1,
        },
    );
    if sh.is_retired(travel) {
        // Acked but dropped: don't resurrect stream state for a travel
        // this server already finished or aborted.
        return LoopCtl::Continue;
    }
    let deliverable: Vec<(u64, Msg)> = {
        let mut streams = sh.relay_in.lock();
        let st = streams.entry((travel, from)).or_insert_with(|| InStream {
            gen: tepoch,
            next_seq: 1,
            buffered: BTreeMap::new(),
        });
        if tepoch < st.gen {
            // Straggler from a superseded stream generation (a pre-crash
            // retransmit the sender has not yet purged). Acked above, but
            // it must not touch the cursor: at the head it would consume a
            // sequence number the live generation is about to use, and in
            // the buffer it would squat on one — either way the live
            // message at that number would later be eaten as a
            // "redelivery" (already acked, never retransmitted) and the
            // travel would wedge.
            sh.metrics
                .stale_travel_epoch_dropped
                .fetch_add(1, Ordering::Relaxed);
            return LoopCtl::Continue;
        }
        if tepoch > st.gen {
            // The sender restarted its stream for a bumped travel-epoch
            // (`CoordHandoff` resets sequence numbering to 1): open the
            // new generation, discarding any buffered stragglers of the
            // old one.
            st.gen = tepoch;
            st.next_seq = 1;
            st.buffered.clear();
        }
        if seq < st.next_seq || st.buffered.contains_key(&seq) {
            sh.metrics.redeliveries.fetch_add(1, Ordering::Relaxed);
            return LoopCtl::Continue;
        }
        st.buffered.insert(seq, (tepoch, inner));
        let mut out = Vec::new();
        while let Some(m) = st.buffered.remove(&st.next_seq) {
            out.push(m);
            st.next_seq += 1;
        }
        out
    };
    for (msg_tepoch, m) in deliverable {
        // The failover fence: messages sent under an older travel-epoch
        // describe a superseded execution of this travel (their
        // coordinator died; a successor re-drove the traversal). They
        // were acked to keep the stream moving, but they must not reach
        // the protocol handlers. The fence sits *after* the in-order
        // pop so relay streams keep seq continuity across failovers.
        if sh.reliable && msg_tepoch < sh.travel_epoch_of(travel) {
            sh.metrics
                .stale_travel_epoch_dropped
                .fetch_add(1, Ordering::Relaxed);
            continue;
        }
        match handle_msg(sh, m) {
            LoopCtl::Continue => {}
            other => return other,
        }
    }
    LoopCtl::Continue
}

/// Check the scripted crash trigger against an arriving frontier message;
/// returns true when the server must die *instead of* processing it (the
/// message is lost with the server, like a process kill mid-receive).
fn crash_triggered(sh: &Arc<Shared>, msg: &Msg) -> bool {
    let Some(trig) = &sh.crash_trigger else {
        return false;
    };
    let qualifies = if trig.point.coordinator_events {
        // Coordinator-role trigger: count tracing/barrier messages this
        // server absorbs while hosting a travel's ledger, so the crash
        // lands mid-travel with coordinator state in flight.
        matches!(
            msg,
            Msg::ExecCreated { .. }
                | Msg::ExecTerminated { .. }
                | Msg::Results { .. }
                | Msg::SyncStepDone { .. }
        )
    } else {
        match msg {
            Msg::Visit { depth, .. } | Msg::SyncFrontier { depth, .. } => *depth >= trig.point.step,
            Msg::SourceScan { .. } => trig.point.step == 0,
            // Only frontier traffic can trip a step-scoped crash; listed
            // explicitly so a new frontier-bearing variant fails gt-lint here.
            Msg::Submit { .. }
            | Msg::Abort { .. }
            | Msg::ProgressQuery { .. }
            | Msg::ProgressReport { .. }
            | Msg::TravelDone { .. }
            | Msg::Cancel { .. }
            | Msg::CancelAck { .. }
            | Msg::ExecCreated { .. }
            | Msg::ExecTerminated { .. }
            | Msg::OriginSatisfied { .. }
            | Msg::Results { .. }
            | Msg::SyncStart { .. }
            | Msg::SyncOrigin { .. }
            | Msg::SyncStepDone { .. }
            | Msg::Ingest { .. }
            | Msg::IngestAck { .. }
            | Msg::GetVertex { .. }
            | Msg::VertexReply { .. }
            | Msg::Relay { .. }
            | Msg::RelayAck { .. }
            | Msg::CoordRecover { .. }
            | Msg::CoordHandoff { .. }
            | Msg::ReAnnounce { .. }
            | Msg::RecoverDone { .. }
            | Msg::PlacementUpdate { .. }
            | Msg::PlacementAck { .. }
            | Msg::ReplicateWrite { .. }
            | Msg::ReplicateAck { .. }
            | Msg::ReplicateLedger { .. }
            | Msg::MigrateBegin { .. }
            | Msg::MigrateData { .. }
            | Msg::MigrateApplied { .. }
            | Msg::MigrateCutover { .. }
            | Msg::MigrateFinish { .. }
            | Msg::Heartbeat { .. }
            | Msg::Suspect { .. }
            | Msg::SuspectAck { .. }
            | Msg::ReReplicateBegin { .. }
            | Msg::ReReplicateData { .. }
            | Msg::ReReplicateCutover { .. }
            | Msg::ReReplicateFinish { .. }
            | Msg::Crash
            | Msg::Shutdown => false,
        }
    };
    if !qualifies {
        return false;
    }
    let n = trig.counted.fetch_add(1, Ordering::Relaxed) + 1;
    n >= trig.point.after_messages.max(1)
}

fn handle_msg(sh: &Arc<Shared>, msg: Msg) -> LoopCtl {
    if crash_triggered(sh, &msg) {
        return LoopCtl::Crash;
    }
    match msg {
        Msg::Shutdown => return LoopCtl::Shutdown,
        Msg::Crash => return LoopCtl::Crash,
        Msg::Relay { .. } | Msg::RelayAck { .. } => {
            // Only dispatch_msg routes these; a nested relay would be
            // a protocol bug.
            debug_assert!(false, "relay inside relay");
        }
        Msg::Submit {
            travel,
            plan,
            client,
        } => handle_submit(sh, travel, plan, client),
        Msg::SourceScan {
            travel,
            plan,
            coordinator,
            exec,
        } => handle_source_scan(sh, travel, plan, coordinator, exec),
        Msg::Visit {
            travel,
            depth,
            exec,
            plan,
            coordinator,
            items,
        } => handle_visit(sh, travel, depth, exec, plan, coordinator, items),
        Msg::ExecCreated {
            travel,
            exec,
            depth,
        } => coord_event(sh, travel, |epoch| LedgerEvent::Created {
            epoch,
            exec,
            depth,
        }),
        Msg::ExecTerminated {
            travel,
            exec,
            children,
        } => {
            coord_event(sh, travel, |epoch| LedgerEvent::Terminated {
                epoch,
                exec,
                children,
            });
            maybe_finish_async(sh, travel);
        }
        Msg::Results { travel, items } => {
            let sync = {
                let mut coords = sh.coords.lock();
                match coords.get_mut(&travel) {
                    Some(CoordState::Sync(s)) => {
                        s.add_results(&items);
                        true
                    }
                    Some(CoordState::Async(_)) => false,
                    None => true, // nothing hosted: nothing to log either
                }
            };
            if !sync {
                coord_event(sh, travel, |epoch| LedgerEvent::Results { epoch, items });
            }
        }
        Msg::OriginSatisfied {
            travel,
            exec,
            coordinator,
            tokens,
        } => handle_origin_satisfied(sh, travel, exec, coordinator, &tokens),
        Msg::SyncStart {
            travel,
            plan,
            coordinator,
            depth,
            expect,
        } => handle_sync_start(sh, travel, plan, coordinator, depth, expect),
        Msg::SyncFrontier {
            travel,
            depth,
            items,
        } => handle_sync_frontier(sh, travel, depth, items),
        Msg::SyncOrigin { travel, tokens } => handle_sync_origin(sh, travel, &tokens),
        Msg::SyncStepDone {
            travel,
            depth,
            server,
            sent,
            origin_sent,
        } => handle_sync_step_done(sh, travel, depth, server, &sent, &origin_sent),
        Msg::CoordRecover {
            travel,
            epoch,
            plan,
            client,
            events,
        } => handle_recover(sh, travel, epoch, plan, client, &events),
        Msg::CoordHandoff {
            travel,
            epoch,
            coordinator,
            restarted,
        } => handle_handoff(sh, travel, epoch, coordinator, restarted),
        Msg::ReAnnounce {
            travel,
            epoch,
            server,
            created,
            terminated,
            results,
        } => handle_reannounce(sh, travel, epoch, server, &created, &terminated, &results),
        Msg::Abort { travel } => {
            handle_abort(sh, travel);
            sh.mark_retired(travel);
        }
        Msg::Cancel { travel, client } => {
            // Cluster-wide cancellation: same cleanup as an abort,
            // but acknowledged so the client can retire the travel's
            // admission slot once every server has complied.
            handle_abort(sh, travel);
            sh.mark_retired(travel);
            let _ = sh.ep.send(
                client,
                Msg::CancelAck {
                    travel,
                    server: sh.id,
                },
            );
        }
        Msg::Ingest {
            req,
            client,
            vertices,
            edges,
        } => handle_ingest(sh, req, client, vertices, edges),
        Msg::PlacementUpdate { map, client } => {
            // Version fence inside install(): a late (stale) map can
            // never roll routing backwards. Ack the *requested* version
            // either way so the orchestrator's barrier converges.
            let version = map.version;
            if sh.placement.install((*map).clone()) {
                sh.metrics.placement_updates.fetch_add(1, Ordering::Relaxed);
            }
            let _ = sh.ep.send(
                client,
                Msg::PlacementAck {
                    version,
                    server: sh.id,
                },
            );
        }
        Msg::ReplicateWrite {
            req,
            origin,
            wseq,
            seq,
            vertices,
            edges,
        } => {
            // Synchronous replica apply: the primary withholds its
            // IngestAck until every holder has confirmed. Versioned
            // batches re-use the primary's stamp (one logical write, one
            // sequence number on every holder) after advancing the local
            // clock past it.
            if let Some(s) = seq {
                sh.partition.store().observe_seq(s);
            }
            for v in &vertices {
                let _ = match seq {
                    Some(s) => sh.partition.put_vertex_at(v, s),
                    None => sh.partition.put_vertex(v),
                };
            }
            for e in &edges {
                let _ = match seq {
                    Some(s) => sh.partition.put_edge_at(e, s),
                    None => sh.partition.put_edge(e),
                };
            }
            sh.metrics
                .replica_writes
                .fetch_add((vertices.len() + edges.len()) as u64, Ordering::Relaxed);
            // Raise the per-origin replication watermark *after* the
            // writes land, so a replica read admitted by the barrier
            // check can never observe a gap.
            if origin < sh.applied_w.len() {
                sh.applied_w[origin].fetch_max(wseq, Ordering::Release);
            }
            let _ = sh.ep.send(origin, Msg::ReplicateAck { req, server: sh.id });
        }
        Msg::ReplicateAck { req, .. } => {
            let acked = {
                let mut pending = sh.pending_ingest.lock();
                match pending.get_mut(&req) {
                    Some(p) => {
                        p.remaining = p.remaining.saturating_sub(1);
                        if p.remaining == 0 {
                            pending.remove(&req)
                        } else {
                            None
                        }
                    }
                    None => None, // duplicate ack
                }
            };
            if let Some(p) = acked {
                let _ = sh.ep.send(
                    p.client,
                    Msg::IngestAck {
                        req,
                        applied: p.applied,
                        wseq: p.wseq,
                    },
                );
            }
        }
        Msg::ReplicateLedger { from, blobs, reset } => {
            handle_replicate_ledger(sh, from, &blobs, reset)
        }
        Msg::MigrateBegin {
            mig,
            partition,
            to,
            client,
        } => handle_migrate_begin(sh, mig, partition, to, client, false),
        Msg::MigrateData {
            mig,
            pairs,
            phase,
            last,
            client,
            ..
        } => {
            // Target side: apply a snapshot (phase 0, bulk segment
            // import) or delta (phase 1, memtable upsert) chunk.
            sh.metrics.migrate_chunks_in.fetch_add(1, Ordering::Relaxed);
            let _ = sh.partition.import_raw(pairs, phase == 0);
            if last {
                let _ = sh.ep.send(
                    client,
                    Msg::MigrateApplied {
                        mig,
                        phase,
                        server: sh.id,
                    },
                );
            }
        }
        Msg::MigrateCutover { mig } => handle_migrate_cutover(sh, mig),
        Msg::MigrateFinish { mig } => {
            sh.migrations.lock().remove(&mig);
        }
        Msg::ReReplicateBegin {
            mig,
            partition,
            to,
            client,
        } => handle_migrate_begin(sh, mig, partition, to, client, true),
        Msg::ReReplicateData {
            mig,
            pairs,
            phase,
            last,
            client,
            ..
        } => {
            // Target side of a replica restoration: identical apply path
            // to a migration chunk, separate dormancy-audited counters.
            sh.metrics
                .rereplicate_chunks_in
                .fetch_add(1, Ordering::Relaxed);
            let _ = sh.partition.import_raw(pairs, phase == 0);
            if last {
                let _ = sh.ep.send(
                    client,
                    Msg::MigrateApplied {
                        mig,
                        phase,
                        server: sh.id,
                    },
                );
            }
        }
        Msg::ReReplicateCutover { mig } => handle_migrate_cutover(sh, mig),
        Msg::ReReplicateFinish { mig } => {
            // The healer finishes both ends of the flow; only the target
            // (which has no source-side entry to clean up) counts the
            // restored replica.
            if sh.migrations.lock().remove(&mig).is_none() {
                sh.metrics.rereplications.fetch_add(1, Ordering::Relaxed);
            }
        }
        Msg::GetVertex {
            req,
            client,
            vertex,
            barrier,
        } => {
            // Low-latency point query (§I: permission checks etc.). A
            // non-zero barrier is the client's read-your-replication
            // fence: serve only if this server has applied the origin
            // primary's writes up to it. An acked ingest is on every
            // holder before the ack, so the miss path is a rare race
            // (e.g. a freshly re-replicated holder with a cold
            // watermark) — redirect to the primary, which is always
            // current for its own writes.
            let origin = sh.placement.primary_of_vid(vertex);
            if barrier > 0
                && origin != sh.id
                && origin < sh.applied_w.len()
                && sh.applied_w[origin].load(Ordering::Acquire) < barrier
            {
                sh.metrics
                    .read_barrier_stalls
                    .fetch_add(1, Ordering::Relaxed);
                let _ = sh.ep.send(
                    origin,
                    Msg::GetVertex {
                        req,
                        client,
                        vertex,
                        barrier: 0,
                    },
                );
                return LoopCtl::Continue;
            }
            let found = sh.partition.get_vertex(vertex).ok().flatten();
            let _ = sh.ep.send(
                client,
                Msg::VertexReply {
                    req,
                    vertex: found.map(Box::new),
                },
            );
        }
        Msg::IngestAck { .. } | Msg::VertexReply { .. } => {}
        Msg::ProgressQuery { travel, client } => {
            let coords = sh.coords.lock();
            let snapshot = match coords.get(&travel) {
                Some(CoordState::Async(l)) => l.progress(),
                Some(CoordState::Sync(s)) => s.outcome().progress,
                None => Default::default(),
            };
            drop(coords);
            let _ = sh.ep.send(client, Msg::ProgressReport { travel, snapshot });
        }
        // Client-facing replies never arrive at servers. Detector traffic
        // is absorbed by the dispatcher before dispatch (Heartbeat,
        // SuspectAck) or addressed to the healer at the client endpoint
        // (Suspect), so none of it reaches this handler either.
        Msg::TravelDone { .. }
        | Msg::ProgressReport { .. }
        | Msg::CancelAck { .. }
        | Msg::RecoverDone { .. }
        | Msg::PlacementAck { .. }
        | Msg::MigrateApplied { .. }
        | Msg::Heartbeat { .. }
        | Msg::Suspect { .. }
        | Msg::SuspectAck { .. } => {}
    }
    LoopCtl::Continue
}

/// The online update path (§I: "live updates"): apply the batch to the
/// local WAL-backed store, then fan it out synchronously to every other
/// holder of each touched partition. The client's `IngestAck` is withheld
/// until all replicas confirm, so an acknowledged write survives the loss
/// of any single holder. Holders are computed from the *currently
/// installed* placement map — after a migration cutover the new primary
/// is a holder, so a stale-routed write still reaches it.
fn handle_ingest(
    sh: &Arc<Shared>,
    req: u64,
    client: usize,
    vertices: Vec<gt_graph::Vertex>,
    edges: Vec<gt_graph::Edge>,
) {
    // Under snapshot isolation the whole batch is stamped with one
    // sequence number, so a travel's view sees either all of an acked
    // batch or none of it — never a torn half.
    let seq = sh.partition.store().alloc_seq();
    let mut applied = 0usize;
    for v in &vertices {
        let ok = match seq {
            Some(s) => sh.partition.put_vertex_at(v, s).is_ok(),
            None => sh.partition.put_vertex(v).is_ok(),
        };
        if ok {
            applied += 1;
        }
    }
    for e in &edges {
        let ok = match seq {
            Some(s) => sh.partition.put_edge_at(e, s).is_ok(),
            None => sh.partition.put_edge(e).is_ok(),
        };
        if ok {
            applied += 1;
        }
    }
    // One write-sequence number per batch: the client's read barrier for
    // this primary. The primary's own watermark rises with it so a
    // barrier-carrying read routed *at* the primary is trivially served.
    let wseq = sh.wseq.fetch_add(1, Ordering::Relaxed) + 1;
    sh.applied_w[sh.id].fetch_max(wseq, Ordering::Release);
    let mut fan: BTreeSet<usize> = BTreeSet::new();
    for vid in vertices
        .iter()
        .map(|v| v.id)
        .chain(edges.iter().map(|e| e.src))
    {
        for s in sh.placement.holders_of_vid(vid) {
            if s != sh.id {
                fan.insert(s);
            }
        }
    }
    if fan.is_empty() {
        capture_migration_delta(sh, &vertices, &edges);
        let _ = sh.ep.send(client, Msg::IngestAck { req, applied, wseq });
        return;
    }
    sh.pending_ingest.lock().insert(
        req,
        PendingIngest {
            client,
            applied,
            remaining: fan.len(),
            wseq,
        },
    );
    capture_migration_delta(sh, &vertices, &edges);
    for s in fan {
        let _ = sh.ep.send(
            s,
            Msg::ReplicateWrite {
                req,
                origin: sh.id,
                wseq,
                seq,
                vertices: vertices.clone(),
                edges: edges.clone(),
            },
        );
    }
}

/// Route a fresh local write into any in-flight outbound migration whose
/// partition it touches. Before the cutover seals the trap the vertex id
/// is merely recorded (the delta phase exports it later); after sealing,
/// the write is exported and shipped to the target immediately so nothing
/// lands in the gap between the delta phase and `MigrateFinish`.
fn capture_migration_delta(
    sh: &Arc<Shared>,
    vertices: &[gt_graph::Vertex],
    edges: &[gt_graph::Edge],
) {
    let touched: BTreeSet<VertexId> = vertices
        .iter()
        .map(|v| v.id)
        .chain(edges.iter().map(|e| e.src))
        .collect();
    if touched.is_empty() {
        return;
    }
    let mut ship: Vec<(TravelId, usize, usize, usize, BTreeSet<VertexId>, bool)> = Vec::new();
    {
        let mut migs = sh.migrations.lock();
        for (mig, m) in migs.iter_mut() {
            let hit: BTreeSet<VertexId> = touched
                .iter()
                .copied()
                .filter(|&v| sh.placement.partition_of_vid(v) == m.partition)
                .collect();
            if hit.is_empty() {
                continue;
            }
            if m.sealed {
                ship.push((*mig, m.partition, m.to, m.client, hit, m.rerep));
            } else {
                m.delta_vids.extend(hit);
            }
        }
    }
    for (mig, partition, to, client, vids, rerep) in ship {
        let pairs = sh
            .partition
            .export_where(|v| vids.contains(&v))
            .unwrap_or_default();
        ship_migrate_chunks(sh, mig, partition, to, client, pairs, 1, false, rerep);
    }
}

/// Source side of a live shard migration, phase 0: register the delta
/// trap, then stream a snapshot of the partition to the target. The trap
/// is registered *before* the snapshot export so a concurrent write can
/// never fall between them — a write captured by both is applied twice on
/// the target, and the second apply is an idempotent upsert.
fn handle_migrate_begin(
    sh: &Arc<Shared>,
    mig: TravelId,
    partition: usize,
    to: usize,
    client: usize,
    rerep: bool,
) {
    sh.migrations.lock().insert(
        mig,
        MigOut {
            partition,
            to,
            client,
            delta_vids: BTreeSet::new(),
            sealed: false,
            rerep,
        },
    );
    let pairs = sh
        .partition
        .export_where(|v| sh.placement.partition_of_vid(v) == partition)
        .unwrap_or_default();
    ship_migrate_chunks(sh, mig, partition, to, client, pairs, 0, true, rerep);
}

/// Source side, phase 1 (cutover): seal the delta trap and ship every
/// vertex written since the snapshot export. Writes arriving after the
/// seal are forwarded individually by [`capture_migration_delta`].
fn handle_migrate_cutover(sh: &Arc<Shared>, mig: TravelId) {
    let taken = {
        let mut migs = sh.migrations.lock();
        migs.get_mut(&mig).map(|m| {
            m.sealed = true;
            (
                m.partition,
                m.to,
                m.client,
                std::mem::take(&mut m.delta_vids),
                m.rerep,
            )
        })
    };
    let Some((partition, to, client, delta, rerep)) = taken else {
        return;
    };
    let pairs = sh
        .partition
        .export_where(|v| delta.contains(&v))
        .unwrap_or_default();
    ship_migrate_chunks(sh, mig, partition, to, client, pairs, 1, true, rerep);
}

/// Chunk raw store triples into [`MIGRATE_CHUNK_PAIRS`]-sized
/// [`Msg::MigrateData`] messages on the bulk traffic class. With
/// `mark_last` the final chunk carries `last = true` (an empty export
/// still ships one empty last chunk so the target always acks the
/// phase); without it no chunk does — post-seal forwards expect no ack.
#[allow(clippy::too_many_arguments)]
fn ship_migrate_chunks(
    sh: &Arc<Shared>,
    mig: TravelId,
    partition: usize,
    to: usize,
    client: usize,
    pairs: Vec<gt_graph::storage::RawTriple>,
    phase: u8,
    mark_last: bool,
    rerep: bool,
) {
    let mut chunks: Vec<Vec<gt_graph::storage::RawTriple>> = Vec::new();
    let mut it = pairs.into_iter().peekable();
    while it.peek().is_some() {
        chunks.push(it.by_ref().take(MIGRATE_CHUNK_PAIRS).collect());
    }
    if chunks.is_empty() && mark_last {
        chunks.push(Vec::new());
    }
    let n = chunks.len();
    for (i, chunk) in chunks.into_iter().enumerate() {
        let counter = if rerep {
            &sh.metrics.rereplicate_chunks_out
        } else {
            &sh.metrics.migrate_chunks_out
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let last = mark_last && i + 1 == n;
        let msg = if rerep {
            Msg::ReReplicateData {
                mig,
                partition,
                pairs: chunk,
                phase,
                last,
                client,
            }
        } else {
            Msg::MigrateData {
                mig,
                partition,
                pairs: chunk,
                phase,
                last,
                client,
            }
        };
        let _ = sh.ep.send(to, msg);
    }
}

/// Apply one tracing event to `travel`'s hosted asynchronous ledger,
/// writing it to the durable blob log *first* (write-ahead) so a
/// successor can replay the stream after this server crashes. Appends a
/// compacted [`LedgerEvent::Snapshot`] every [`LEDGER_SNAPSHOT_EVERY`]
/// events to bound replay work. No-op when this server doesn't host an
/// asynchronous ledger for `travel`.
fn coord_event(sh: &Arc<Shared>, travel: TravelId, make: impl FnOnce(u64) -> LedgerEvent) {
    let mut shipped: Vec<Vec<u8>> = Vec::new();
    {
        let mut coords = sh.coords.lock();
        let Some(CoordState::Async(l)) = coords.get_mut(&travel) else {
            return;
        };
        let ev = make(l.epoch);
        if let Some(log) = &sh.ledger {
            let mut log = log.lock();
            let blob = ev.encode(travel);
            let _ = log.append(&blob);
            shipped.push(blob);
            l.apply(&ev);
            l.events_since_snapshot += 1;
            if l.events_since_snapshot >= LEDGER_SNAPSHOT_EVERY {
                let snap = l.snapshot_event().encode(travel);
                let _ = log.append(&snap);
                shipped.push(snap);
                l.events_since_snapshot = 0;
            }
        } else {
            l.apply(&ev);
        }
    }
    // Fan the durable blobs out to the ledger replica set *after* the
    // coordinator locks are released — replication rides the raw (FIFO,
    // chaos-exempt) control plane, so order is still preserved per link.
    ship_ledger_blobs(sh, shipped, false);
}

/// Replicate freshly-appended ledger blobs (or a truncation marker) to
/// this server's ledger peers. With a replication factor below 2 the
/// cluster runs in the pre-replication single-copy regime and nothing is
/// shipped.
fn ship_ledger_blobs(sh: &Arc<Shared>, blobs: Vec<Vec<u8>>, reset: bool) {
    if sh.replication < 2 || (blobs.is_empty() && !reset) {
        return;
    }
    for peer in sh.placement.ledger_peers(sh.id, sh.replication) {
        let _ = sh.ep.send(
            peer,
            Msg::ReplicateLedger {
                from: sh.id,
                blobs: blobs.clone(),
                reset,
            },
        );
    }
}

/// Receiver side of ledger replication: persist another coordinator's
/// travel-ledger blobs into a per-origin sidecar log so a cluster-level
/// failover can replay them if the origin's disk is lost too.
fn handle_replicate_ledger(sh: &Arc<Shared>, from: usize, blobs: &[Vec<u8>], reset: bool) {
    let Some(dir) = &sh.ledger_dir else { return };
    let mut logs = sh.replica_ledgers.lock();
    let log = match logs.entry(from) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(slot) => {
            let path = dir.join(format!("travel-ledger-replica-{from}.log"));
            match BlobLog::open(&path, false) {
                Ok(l) => slot.insert(l),
                Err(_) => return,
            }
        }
    };
    if reset {
        let _ = log.reset();
    }
    for blob in blobs {
        let _ = log.append(blob);
    }
    sh.metrics
        .ledger_blobs_replicated
        .fetch_add(blobs.len() as u64, Ordering::Relaxed);
}

/// Truncate the durable ledger log once this server hosts no coordinator
/// state at all (no live ledgers, no takeover in progress); everything in
/// it is then about finished travels no successor will ever replay.
fn maybe_reset_ledger(sh: &Arc<Shared>) {
    let Some(log) = &sh.ledger else { return };
    if !sh.coords.lock().is_empty() || !sh.recovering.lock().is_empty() {
        return;
    }
    let _ = log.lock().reset();
    // Keep the replica copies in lock-step: a truncated primary log with
    // stale replicas would replay finished travels after a failover.
    ship_ledger_blobs(sh, Vec::new(), true);
}

/// Become the successor coordinator for an orphaned travel (failover step
/// 1): rebuild a scratch ledger from the dead coordinator's durable event
/// stream, then wait for every server's [`Msg::ReAnnounce`] before
/// resuming the traversal.
fn handle_recover(
    sh: &Arc<Shared>,
    travel: TravelId,
    epoch: u64,
    plan: Arc<Plan>,
    client: usize,
    events: &[LedgerEvent],
) {
    if sh.is_retired(travel) || epoch < sh.travel_epoch_of(travel) {
        // The travel already finished here, or a newer failover epoch has
        // been fenced in: a late recover seed must not resurrect it. Still
        // ack a seed for a finished travel — `RecoverDone` is a raw send,
        // so the first ack may have been lost and the failover driver will
        // keep re-nudging until one lands.
        if sh.is_retired(travel) {
            let _ = sh.ep.send(client, Msg::RecoverDone { travel, epoch });
        }
        return;
    }
    if sh
        .recovering
        .lock()
        .get(&travel)
        .is_some_and(|r| epoch <= r.epoch)
    {
        return; // duplicate (or stale) seed for a recovery already underway
    }
    // A re-nudged seed for a recovery that already COMPLETED must not
    // restart it. `finish_recovery` drops the barrier state, so the
    // `recovering` check above cannot catch this; but it installs the
    // re-driven coordinator state, so its presence at this epoch is the
    // completion marker. Restarting would swap in a fresh ledger while the
    // re-driven run's execs are live under the same (unfenced) epoch,
    // splitting their Created/Terminated events across ledger generations
    // and wedging the travel forever. Just re-ack the nudge.
    let fenced_epoch = sh.travel_epoch_of(travel);
    let live_epoch = sh.coords.lock().get(&travel).map(|state| match state {
        CoordState::Async(l) => l.epoch,
        CoordState::Sync(_) => fenced_epoch,
    });
    if live_epoch.is_some_and(|cur| epoch <= cur) {
        let _ = sh.ep.send(client, Msg::RecoverDone { travel, epoch });
        return;
    }
    let (mut scratch, applied) = TravelLedger::replay(plan.clone(), client, events);
    scratch.epoch = epoch;
    sh.metrics.ledger_replays.fetch_add(1, Ordering::Relaxed);
    sh.metrics
        .ledger_events_replayed
        .fetch_add(applied, Ordering::Relaxed);
    sh.metrics.failovers.fetch_add(1, Ordering::Relaxed);
    sh.recovering.lock().insert(
        travel,
        RecoveryState {
            plan,
            client,
            epoch,
            scratch,
            awaiting: (0..sh.n_servers).collect(),
        },
    );
    // Replay any re-announcements that beat this seed to the mailbox;
    // stale-epoch stashes are filtered by the normal barrier checks.
    let stashed = sh.early_announce.lock().remove(&travel);
    for ea in stashed.into_iter().flatten() {
        handle_reannounce(
            sh,
            travel,
            ea.epoch,
            ea.server,
            &ea.created,
            &ea.terminated,
            &ea.results,
        );
    }
}

/// A failover re-homed `travel` onto `coordinator` under travel-epoch
/// `epoch` (failover step 2, broadcast to every server): fence the old
/// epoch, drop this server's per-travel transient state (the successor
/// re-drives the traversal from the source), and re-announce the
/// sent-journal. The travel's outgoing relay streams restart at
/// sequence 1 under the new epoch (see [`InStream`]): the old
/// generation's unacked messages are dropped here (their payloads would
/// be fenced at the receivers anyway), and receivers recognize the new
/// generation by its higher travel-epoch stamp — which is what keeps a
/// pre-failover retransmit from colliding with live post-failover
/// traffic on a reused sequence number.
fn handle_handoff(
    sh: &Arc<Shared>,
    travel: TravelId,
    epoch: u64,
    coordinator: usize,
    _restarted: Option<usize>,
) {
    if sh.is_retired(travel) {
        // The travel finished here while the failover was being set up
        // (its Abort was already queued ahead of the handoff). There is
        // nothing to clear and the journal is gone; still answer so the
        // successor's re-announce barrier can't stall.
        let _ = sh.ep.send(
            coordinator,
            Msg::ReAnnounce {
                travel,
                epoch,
                server: sh.id,
                created: Vec::new(),
                terminated: Vec::new(),
                results: Vec::new(),
            },
        );
        return;
    }
    let duplicate = {
        let mut te = sh.travel_epoch.lock();
        let cur = te.entry(travel).or_insert(0);
        if epoch < *cur {
            return; // out-of-date handoff from a superseded failover
        }
        let dup = epoch == *cur;
        *cur = epoch;
        dup
    };
    if !duplicate {
        // First sight of this epoch: drop per-travel transients. A
        // re-nudged duplicate must NOT repeat this — by then the
        // successor's re-drive may have queued fresh work for the travel,
        // and clearing it again would strand live execs.
        sh.queue.clear_travel(travel);
        sh.cache.forget_travel(travel);
        {
            let mut reg = sh.tokens.lock();
            reg.by_key.retain(|(t, _, _), _| *t != travel);
            reg.records.retain(|(t, _), _| *t != travel);
        }
        // Clear sync-step buffers *and* any pre-handoff early-sync stash:
        // the re-drive resends everything, so stale stashed items would be
        // double-counted into the new buffers.
        sh.early_sync.lock().remove(&travel);
        sh.sync_bufs.lock().remove(&travel);
        {
            // Restart this travel's outgoing streams (toward every peer)
            // at sequence 1 under the new epoch, dropping unacked
            // pre-handoff messages: the receivers fence their payloads
            // regardless, and the receiver-side generation check
            // (`InStream::gen`) needs the new epoch's numbering to start
            // fresh so pre-handoff retransmits can never collide with
            // live traffic on a sequence number.
            let mut out = sh.relay_out.lock();
            out.next_seq.retain(|&(t, _), _| t != travel);
            out.pending.retain(|&(t, _, _), _| t != travel);
        }
        if sh.id != coordinator {
            sh.coords.lock().remove(&travel);
        }
    }
    let j = sh.journal.lock().remove(&travel).unwrap_or_default();
    // Raw send: the handoff protocol *is* the recovery path, so it rides
    // neither the chaos-faced relay layer nor the travel-epoch fence.
    let _ = sh.ep.send(
        coordinator,
        Msg::ReAnnounce {
            travel,
            epoch,
            server: sh.id,
            created: j.created,
            terminated: j.terminated,
            results: j.results,
        },
    );
}

/// One server's journal re-announcement during a takeover (failover step
/// 3). Merging every journal into the scratch ledger recovers tracing
/// state that was in flight (or unsent) when the coordinator died.
fn handle_reannounce(
    sh: &Arc<Shared>,
    travel: TravelId,
    epoch: u64,
    server: usize,
    created: &[(ExecId, u16)],
    terminated: &[(ExecId, Vec<(ExecId, u16)>)],
    results: &[(u16, VertexId)],
) {
    if sh.is_retired(travel) {
        return; // the travel finished here; no barrier left to feed
    }
    let complete = {
        let mut rec = sh.recovering.lock();
        if let Some(r) = rec.get_mut(&travel) {
            if epoch != r.epoch || !r.awaiting.remove(&server) {
                return; // stale round or duplicate announcement
            }
            sh.metrics.reannounce_msgs.fetch_add(1, Ordering::Relaxed);
            for &(exec, depth) in created {
                r.scratch.exec_created(exec, depth);
            }
            for (exec, children) in terminated {
                r.scratch.exec_terminated(*exec, children);
            }
            r.scratch.add_results(results);
            Some(r.awaiting.is_empty())
        } else {
            None
        }
    };
    let Some(complete) = complete else {
        // The announcement raced ahead of its `CoordRecover` seed (they
        // travel on different links, so nothing orders them). Stash it;
        // `handle_recover` replays the stash once the barrier exists.
        let mut early = sh.early_announce.lock();
        early.entry(travel).or_default().push(EarlyAnnounce {
            epoch,
            server,
            created: created.to_vec(),
            terminated: terminated.to_vec(),
            results: results.to_vec(),
        });
        while early.len() > MAX_EARLY_ANNOUNCE_TRAVELS {
            early.pop_first();
        }
        return;
    };
    if complete {
        finish_recovery(sh, travel);
    }
}

/// Every server re-announced: resume the orphaned travel. If the scratch
/// ledger is already complete the crash hit during result assembly — the
/// reliable streams' FIFO order (`Results` before `ExecTerminated`)
/// guarantees every result is present, so the travel completes without
/// re-executing anything. Otherwise the traversal is re-driven from its
/// source under the bumped travel-epoch, seeded with the surviving
/// results (reachable vertices stay reachable; per-depth sets dedup the
/// overlap with the re-driven run).
fn finish_recovery(sh: &Arc<Shared>, travel: TravelId) {
    let Some(rec) = sh.recovering.lock().remove(&travel) else {
        return;
    };
    let RecoveryState {
        plan,
        client,
        epoch,
        scratch,
        ..
    } = rec;
    let sync_engine = matches!(sh.engine_kind, EngineKind::Sync);
    if !sync_engine && scratch.is_done() {
        let outcome = scratch.outcome();
        for s in 0..sh.n_servers {
            let _ = sh.ep.send(s, Msg::Abort { travel });
        }
        let _ = sh.ep.send(client, Msg::TravelDone { travel, outcome });
        let _ = sh.ep.send(client, Msg::RecoverDone { travel, epoch });
        return;
    }
    let seeded = scratch.results_flat();
    if sync_engine {
        let mut state = SyncState::new(plan.clone(), client, sh.n_servers);
        state.add_results(&seeded);
        sh.coords.lock().insert(travel, CoordState::Sync(state));
        for s in 0..sh.n_servers {
            send_travel(
                sh,
                s,
                travel,
                epoch,
                Msg::SyncStart {
                    travel,
                    plan: plan.clone(),
                    coordinator: sh.id,
                    depth: 0,
                    expect: SyncExpect::ScanSource,
                },
            );
        }
    } else {
        sh.coords.lock().insert(
            travel,
            CoordState::Async(TravelLedger::new_with_epoch(plan.clone(), client, epoch)),
        );
        if !seeded.is_empty() {
            coord_event(sh, travel, |epoch| LedgerEvent::Results {
                epoch,
                items: seeded,
            });
        }
        dispatch_travel_source(sh, travel, &plan, epoch);
    }
    // Acknowledged handoff: tell the orchestrating client the takeover
    // finished (re-announce barrier drained, traversal re-driven). Raw
    // send — this is the recovery control plane, not travel traffic.
    let _ = sh.ep.send(client, Msg::RecoverDone { travel, epoch });
}

/// Complete an asynchronous traversal if its ledger says so.
fn maybe_finish_async(sh: &Arc<Shared>, travel: TravelId) {
    let finished = {
        let mut coords = sh.coords.lock();
        match coords.get(&travel) {
            Some(CoordState::Async(l)) if l.is_done() => match coords.remove(&travel) {
                Some(CoordState::Async(l)) => Some((l.client, l.outcome())),
                _ => None,
            },
            _ => None,
        }
    };
    if let Some((client, outcome)) = finished {
        // Release per-travel state on every server, then notify the client.
        for s in 0..sh.n_servers {
            let _ = sh.ep.send(s, Msg::Abort { travel });
        }
        let _ = sh.ep.send(client, Msg::TravelDone { travel, outcome });
    }
}

fn handle_submit(sh: &Arc<Shared>, travel: TravelId, plan: Arc<Plan>, client: usize) {
    let tepoch = sh.travel_epoch_of(travel);
    let sync = {
        // The submitting client decided this server coordinates `travel`.
        let mut coords = sh.coords.lock();
        if matches!(plan_engine_kind(sh), EngineKind::Sync) {
            coords.insert(
                travel,
                CoordState::Sync(SyncState::new(plan.clone(), client, sh.n_servers)),
            );
            true
        } else {
            coords.insert(
                travel,
                CoordState::Async(TravelLedger::new_with_epoch(plan.clone(), client, tepoch)),
            );
            false
        }
    };
    if sync {
        for s in 0..sh.n_servers {
            send_travel(
                sh,
                s,
                travel,
                tepoch,
                Msg::SyncStart {
                    travel,
                    plan: plan.clone(),
                    coordinator: sh.id,
                    depth: 0,
                    expect: SyncExpect::ScanSource,
                },
            );
        }
        return;
    }
    dispatch_travel_source(sh, travel, &plan, tepoch);
}

/// Asynchronous source dispatch from the coordinator — targeted for
/// explicit ids ("the coordinator first learns that userA is stored in
/// server 2 … then sends the request"), broadcast scan otherwise. Used
/// both by a fresh submission and by a failover re-drive (then `tepoch`
/// carries the bumped travel-epoch).
fn dispatch_travel_source(sh: &Arc<Shared>, travel: TravelId, plan: &Arc<Plan>, tepoch: u64) {
    match &plan.source {
        Source::Ids(ids) => {
            let buckets = sh.placement.group_by_primary(ids.iter().copied());
            let mut any = false;
            for (owner, vids) in buckets.into_iter().enumerate() {
                if vids.is_empty() {
                    continue;
                }
                any = true;
                let exec = alloc_exec(sh);
                coord_event(sh, travel, |epoch| LedgerEvent::Created {
                    epoch,
                    exec,
                    depth: 0,
                });
                let items: Vec<(VertexId, Tokens)> =
                    vids.into_iter().map(|v| (v, Vec::new())).collect();
                send_travel(
                    sh,
                    owner,
                    travel,
                    tepoch,
                    Msg::Visit {
                        travel,
                        depth: 0,
                        exec,
                        plan: plan.clone(),
                        coordinator: sh.id,
                        items,
                    },
                );
            }
            if !any {
                // Degenerate: no owned sources at all; finish immediately.
                let exec = alloc_exec(sh);
                coord_event(sh, travel, |epoch| LedgerEvent::Created {
                    epoch,
                    exec,
                    depth: 0,
                });
                coord_event(sh, travel, |epoch| LedgerEvent::Terminated {
                    epoch,
                    exec,
                    children: Vec::new(),
                });
                maybe_finish_async(sh, travel);
            }
        }
        Source::All => {
            for s in 0..sh.n_servers {
                let exec = alloc_exec(sh);
                coord_event(sh, travel, |epoch| LedgerEvent::Created {
                    epoch,
                    exec,
                    depth: 0,
                });
                send_travel(
                    sh,
                    s,
                    travel,
                    tepoch,
                    Msg::SourceScan {
                        travel,
                        plan: plan.clone(),
                        coordinator: sh.id,
                        exec,
                    },
                );
            }
        }
    }
}

/// The engine kind is cluster-wide; infer it from the queue/cache wiring.
/// (Kept as a function so a future per-travel override has one seam.)
fn plan_engine_kind(sh: &Arc<Shared>) -> EngineKind {
    sh.engine_kind
}

fn alloc_exec(sh: &Arc<Shared>) -> ExecId {
    ExecId::new(sh.id, sh.exec_ctr.fetch_add(1, Ordering::Relaxed))
}

/// The read view every storage access of a travel resolves against: the
/// plan's snapshot/`as_of` bound, or plain latest-reads without one.
fn plan_view(plan: &Plan) -> ReadView {
    plan.view_seq()
        .map(ReadView::at)
        .unwrap_or(ReadView::LATEST)
}

/// Resolve the plan's source to locally-owned vertex ids.
fn resolve_local_source(sh: &Arc<Shared>, plan: &Plan) -> Vec<VertexId> {
    match &plan.source {
        Source::Ids(ids) => ids
            .iter()
            .copied()
            .filter(|&v| sh.placement.is_primary_vid(sh.id, v))
            .collect(),
        Source::All => {
            let view = plan_view(plan);
            let scan = if let Some(t) = plan.source_type_hint() {
                sh.partition.vertices_of_type_at(t, view)
            } else {
                sh.partition.all_vertex_ids_at(view)
            };
            // Replication and migration residue mean the local store may
            // hold vertices this server is no longer (or never was) the
            // primary for; scanning them too would double-count sources.
            scan.unwrap_or_default()
                .into_iter()
                .filter(|&v| sh.placement.is_primary_vid(sh.id, v))
                .collect()
        }
    }
}

fn handle_source_scan(
    sh: &Arc<Shared>,
    travel: TravelId,
    plan: Arc<Plan>,
    coordinator: usize,
    exec: ExecId,
) {
    let items: Vec<(VertexId, Tokens)> = resolve_local_source(sh, &plan)
        .into_iter()
        .map(|v| (v, Vec::new()))
        .collect();
    handle_visit(sh, travel, 0, exec, plan, coordinator, items);
}

fn handle_visit(
    sh: &Arc<Shared>,
    travel: TravelId,
    depth: u16,
    exec: ExecId,
    plan: Arc<Plan>,
    coordinator: usize,
    items: Vec<(VertexId, Tokens)>,
) {
    if sh.is_retired(travel) {
        // Stray in-flight visit for an aborted/finished travel: dropping
        // it here keeps the queue and cache free of orphaned state.
        return;
    }
    sh.metrics
        .requests_received
        .fetch_add(items.len() as u64, Ordering::Relaxed);
    // Traversal-affiliate cache check at receipt (§V-A): redundant
    // requests are abandoned before they ever reach the queue.
    let mut kept: Vec<(VertexId, Tokens)> = Vec::with_capacity(items.len());
    let mut redundant = 0u64;
    for (v, tokens) in items {
        match sh.cache.observe(travel, depth, v, &tokens) {
            CacheDecision::FirstVisit => kept.push((v, tokens)),
            CacheDecision::Redundant => redundant += 1,
            CacheDecision::NewTokens(new) => kept.push((v, new)),
        }
    }
    if redundant > 0 {
        sh.metrics
            .redundant_visits
            .fetch_add(redundant, Ordering::Relaxed);
        sh.metrics
            .travel_mut(travel, |t| t.redundant_visits += redundant);
    }
    let req = Arc::new(RequestState {
        travel,
        depth,
        exec,
        plan,
        coordinator,
        tepoch: sh.travel_epoch_of(travel),
        mode: ReqMode::Async,
        remaining: AtomicUsize::new(kept.len()),
        out: Mutex::new(Default::default()),
    });
    if kept.is_empty() {
        flush_request(sh, &req);
        return;
    }
    let enqueued_at = Instant::now();
    let work: Vec<WorkItem> = kept
        .into_iter()
        .map(|(vertex, tokens)| WorkItem {
            vertex,
            depth,
            tokens,
            enqueued_at,
            req: req.clone(),
        })
        .collect();
    sh.queue.push_many(work);
    sh.metrics.observe_queue_len(sh.queue.len());
}

fn handle_origin_satisfied(
    sh: &Arc<Shared>,
    travel: TravelId,
    exec: ExecId,
    coordinator: usize,
    tokens: &[u64],
) {
    if sh.is_retired(travel) {
        return;
    }
    let tepoch = sh.travel_epoch_of(travel);
    let released = release_tokens(sh, travel, tokens);
    if !released.is_empty() {
        sh.metrics
            .results_sent
            .fetch_add(released.len() as u64, Ordering::Relaxed);
        send_travel(
            sh,
            coordinator,
            travel,
            tepoch,
            Msg::Results {
                travel,
                items: released,
            },
        );
    }
    // Terminate the synthetic execution *after* the results, on the same
    // ordered stream, so the coordinator cannot complete before seeing
    // them (under chaos the reliable layer restores the FIFO guarantee).
    send_travel(
        sh,
        coordinator,
        travel,
        tepoch,
        Msg::ExecTerminated {
            travel,
            exec,
            children: Vec::new(),
        },
    );
}

/// Mark tokens released and return their recorded (depth, vertex) pairs.
fn release_tokens(sh: &Arc<Shared>, travel: TravelId, tokens: &[u64]) -> Vec<(u16, VertexId)> {
    let mut reg = sh.tokens.lock();
    let mut out = Vec::new();
    for &t in tokens {
        if let Some(rec) = reg.records.get_mut(&(travel, t)) {
            if !rec.released {
                rec.released = true;
                out.push((rec.depth, rec.vertex));
            }
        }
    }
    out
}

fn handle_abort(sh: &Arc<Shared>, travel: TravelId) {
    sh.queue.clear_travel(travel);
    sh.cache.forget_travel(travel);
    {
        let mut reg = sh.tokens.lock();
        reg.by_key.retain(|(t, _, _), _| *t != travel);
        reg.records.retain(|(t, _), _| *t != travel);
    }
    sh.early_sync.lock().remove(&travel);
    sh.sync_bufs.lock().remove(&travel);
    sh.coords.lock().remove(&travel);
    // Reliable-delivery state dies with the travel: pending retransmits
    // stop, receive streams forget their cursors (a resubmission gets a
    // new travel id and fresh streams).
    {
        let mut out = sh.relay_out.lock();
        out.next_seq.retain(|&(t, _), _| t != travel);
        out.pending.retain(|&(t, _, _), _| t != travel);
    }
    sh.relay_in.lock().retain(|&(t, _), _| t != travel);
    // Failover bookkeeping follows the travel out.
    if sh.reliable {
        sh.journal.lock().remove(&travel);
        sh.travel_epoch.lock().remove(&travel);
        sh.early_announce.lock().remove(&travel);
        sh.recovering.lock().remove(&travel);
        maybe_reset_ledger(sh);
    }
}

// ------------------------------------------------------ sync engine

fn handle_sync_start(
    sh: &Arc<Shared>,
    travel: TravelId,
    plan: Arc<Plan>,
    coordinator: usize,
    depth: u16,
    expect: SyncExpect,
) {
    if sh.is_retired(travel) {
        return;
    }
    // Create the travel's buffers and adopt any frontier/origin traffic
    // that beat this SyncStart here on another link (routine right after a
    // failover: the restarted server has no buffers and the handoff
    // cleared every survivor's) before the expect accounting below runs.
    let stashed = sh.early_sync.lock().remove(&travel);
    {
        let mut bufs = sh.sync_bufs.lock();
        let tb = bufs.entry(travel).or_insert_with(|| SyncBufs {
            plan: plan.clone(),
            coordinator,
            frontier: HashMap::new(),
            origin: OriginBuf::default(),
        });
        tb.plan = plan.clone();
        tb.coordinator = coordinator;
        if let Some(st) = stashed {
            for (d, items) in st.frontier {
                let fb = tb.frontier.entry(d).or_default();
                fb.received += items.len() as u64;
                fb.items.extend(items);
            }
            tb.origin.received += st.origin_tokens.len() as u64;
            tb.origin.tokens.extend(st.origin_tokens);
        }
    }
    match expect {
        SyncExpect::ScanSource => {
            let sources = resolve_local_source(sh, &plan);
            sh.metrics
                .requests_received
                .fetch_add(sources.len() as u64, Ordering::Relaxed);
            let items: Vec<(VertexId, Tokens)> =
                sources.into_iter().map(|v| (v, Vec::new())).collect();
            enqueue_sync_fragment(sh, travel, 0, plan, coordinator, items);
        }
        SyncExpect::Vertices(n) => {
            let ready = {
                let mut bufs = sh.sync_bufs.lock();
                let Some(tb) = bufs.get_mut(&travel) else {
                    return;
                };
                let fb = tb.frontier.entry(depth).or_default();
                fb.expected = Some(n);
                fb.received >= n && !fb.done
            };
            if ready {
                fire_sync_fragment(sh, travel, depth);
            }
        }
        SyncExpect::OriginTokens(n) => {
            let ready = {
                let mut bufs = sh.sync_bufs.lock();
                let Some(tb) = bufs.get_mut(&travel) else {
                    return;
                };
                tb.origin.expected = Some(n);
                tb.origin.received >= n && !tb.origin.done
            };
            if ready {
                fire_sync_origin_release(sh, travel, depth);
            }
        }
    }
}

fn handle_sync_frontier(
    sh: &Arc<Shared>,
    travel: TravelId,
    depth: u16,
    items: Vec<(VertexId, Tokens)>,
) {
    if sh.is_retired(travel) {
        return;
    }
    let ready = {
        let mut bufs = sh.sync_bufs.lock();
        match bufs.get_mut(&travel) {
            Some(tb) => {
                let fb = tb.frontier.entry(depth).or_default();
                fb.received += items.len() as u64;
                fb.items.extend(items);
                matches!(fb.expected, Some(n) if fb.received >= n && !fb.done)
            }
            None => {
                // A peer's frontier rides a different link than the
                // coordinator's SyncStart, so nothing orders them; right
                // after a failover every server lacks buffers (the
                // restarted one starts fresh, survivors are cleared by the
                // handoff) and this window is routinely hit. Stash the
                // items; handle_sync_start adopts them when it creates the
                // buffers. Dropping them would leave the step barrier
                // under-filled forever.
                drop(bufs);
                let mut early = sh.early_sync.lock();
                let st = early.entry(travel).or_default();
                st.frontier.push((depth, items));
                while early.len() > MAX_EARLY_SYNC_TRAVELS {
                    early.pop_first();
                }
                false
            }
        }
    };
    if ready {
        fire_sync_fragment(sh, travel, depth);
    }
}

fn fire_sync_fragment(sh: &Arc<Shared>, travel: TravelId, depth: u16) {
    let (plan, coordinator, items) = {
        let mut bufs = sh.sync_bufs.lock();
        let Some(tb) = bufs.get_mut(&travel) else {
            return;
        };
        let Some(fb) = tb.frontier.get_mut(&depth) else {
            return;
        };
        if fb.done {
            return;
        }
        fb.done = true;
        (
            tb.plan.clone(),
            tb.coordinator,
            std::mem::take(&mut fb.items),
        )
    };
    sh.metrics
        .requests_received
        .fetch_add(items.len() as u64, Ordering::Relaxed);
    enqueue_sync_fragment(sh, travel, depth, plan, coordinator, items);
}

/// Dedup a step fragment (level-synchronous BFS visits each vertex once
/// per step) and push it to the work queue.
fn enqueue_sync_fragment(
    sh: &Arc<Shared>,
    travel: TravelId,
    depth: u16,
    plan: Arc<Plan>,
    coordinator: usize,
    items: Vec<(VertexId, Tokens)>,
) {
    let mut merged: BTreeMap<VertexId, BTreeSet<Token>> = BTreeMap::new();
    let mut dup = 0u64;
    for (v, tokens) in items {
        match merged.entry(v) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                dup += 1;
                e.get_mut().extend(tokens);
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(tokens.into_iter().collect());
            }
        }
    }
    if dup > 0 {
        sh.metrics
            .redundant_visits
            .fetch_add(dup, Ordering::Relaxed);
        sh.metrics.travel_mut(travel, |t| t.redundant_visits += dup);
    }
    let req = Arc::new(RequestState {
        travel,
        depth,
        exec: alloc_exec(sh),
        plan,
        coordinator,
        tepoch: sh.travel_epoch_of(travel),
        mode: ReqMode::SyncStep,
        remaining: AtomicUsize::new(merged.len()),
        out: Mutex::new(Default::default()),
    });
    if merged.is_empty() {
        flush_request(sh, &req);
        return;
    }
    let enqueued_at = Instant::now();
    let work: Vec<WorkItem> = merged
        .into_iter()
        .map(|(vertex, tokens)| WorkItem {
            vertex,
            depth,
            tokens: tokens.into_iter().collect(),
            enqueued_at,
            req: req.clone(),
        })
        .collect();
    sh.queue.push_many(work);
    sh.metrics.observe_queue_len(sh.queue.len());
}

fn handle_sync_origin(sh: &Arc<Shared>, travel: TravelId, tokens: &[u64]) {
    if sh.is_retired(travel) {
        return;
    }
    let ready_depth = {
        let mut bufs = sh.sync_bufs.lock();
        match bufs.get_mut(&travel) {
            Some(tb) => {
                tb.origin.received += tokens.len() as u64;
                tb.origin.tokens.extend_from_slice(tokens);
                if matches!(tb.origin.expected, Some(n) if tb.origin.received >= n && !tb.origin.done)
                {
                    Some(tb.plan.depth() + 1)
                } else {
                    None
                }
            }
            None => {
                // Same no-buffers-yet window as handle_sync_frontier:
                // stash for handle_sync_start to adopt.
                drop(bufs);
                let mut early = sh.early_sync.lock();
                let st = early.entry(travel).or_default();
                st.origin_tokens.extend_from_slice(tokens);
                while early.len() > MAX_EARLY_SYNC_TRAVELS {
                    early.pop_first();
                }
                None
            }
        }
    };
    if let Some(depth) = ready_depth {
        fire_sync_origin_release(sh, travel, depth);
    }
}

fn fire_sync_origin_release(sh: &Arc<Shared>, travel: TravelId, depth: u16) {
    let (coordinator, tokens) = {
        let mut bufs = sh.sync_bufs.lock();
        let Some(tb) = bufs.get_mut(&travel) else {
            return;
        };
        if tb.origin.done {
            return;
        }
        tb.origin.done = true;
        (tb.coordinator, std::mem::take(&mut tb.origin.tokens))
    };
    let tepoch = sh.travel_epoch_of(travel);
    let released = release_tokens(sh, travel, &tokens);
    if !released.is_empty() {
        sh.metrics
            .results_sent
            .fetch_add(released.len() as u64, Ordering::Relaxed);
        send_travel(
            sh,
            coordinator,
            travel,
            tepoch,
            Msg::Results {
                travel,
                items: released,
            },
        );
    }
    send_travel(
        sh,
        coordinator,
        travel,
        tepoch,
        Msg::SyncStepDone {
            travel,
            depth,
            server: sh.id,
            sent: Vec::new(),
            origin_sent: Vec::new(),
        },
    );
}

fn handle_sync_step_done(
    sh: &Arc<Shared>,
    travel: TravelId,
    depth: u16,
    server: usize,
    sent: &[(usize, u64)],
    origin_sent: &[(usize, u64)],
) {
    if sh.is_retired(travel) {
        // A racing Abort already retired this travel on the coordinator; a
        // late barrier report must not advance or finish it.
        return;
    }
    let action = {
        let mut coords = sh.coords.lock();
        let Some(CoordState::Sync(state)) = coords.get_mut(&travel) else {
            return;
        };
        if !state.step_done(server, depth, sent, origin_sent) {
            return; // barrier not yet reached
        }
        let next = state.advance();
        if next.is_empty() {
            let client = state.client;
            let outcome = state.outcome();
            coords.remove(&travel);
            Err((client, outcome))
        } else {
            Ok((state.plan.clone(), next))
        }
    };
    match action {
        Ok((plan, next)) => {
            let tepoch = sh.travel_epoch_of(travel);
            for (srv, d, expect) in next {
                send_travel(
                    sh,
                    srv,
                    travel,
                    tepoch,
                    Msg::SyncStart {
                        travel,
                        plan: plan.clone(),
                        coordinator: sh.id,
                        depth: d,
                        expect,
                    },
                );
            }
        }
        Err((client, outcome)) => {
            for s in 0..sh.n_servers {
                let _ = sh.ep.send(s, Msg::Abort { travel });
            }
            let _ = sh.ep.send(client, Msg::TravelDone { travel, outcome });
        }
    }
}

// ======================================================== worker side

fn worker_loop(sh: &Arc<Shared>) {
    while let Some(parts) = sh.queue.pop() {
        process_parts(sh, parts);
    }
}

/// Process every queued part for one vertex with a single storage access
/// (execution merging, §V-B).
///
/// Parts sharing the same depth are *coalesced duplicates* (several
/// executions requested the same `(step, vertex)` while it sat in the
/// queue): their traversal output is identical, so it is produced once —
/// attributed to the first part's execution with the union of the parts'
/// origin tokens — and the twins only tick their executions' countdowns
/// (counted as redundant visits). Parts at *different* depths are the
/// §V-B execution merge: distinct traversal work sharing one disk access
/// (counted as combined visits).
fn process_parts(sh: &Arc<Shared>, parts: Vec<WorkItem>) {
    debug_assert!(!parts.is_empty());
    let vertex = parts[0].vertex;
    // All parts of one pop belong to one travel (neither queue merges
    // across travels); attribute the pop's accounting to it.
    let travel = parts[0].req.travel;
    let popped_at = Instant::now();
    let wait_ns: u64 = parts
        .iter()
        .map(|p| {
            popped_at
                .saturating_duration_since(p.enqueued_at)
                .as_nanos() as u64
        })
        .sum();
    let n_parts = parts.len() as u64;
    let Some(min_depth) = parts.iter().map(|p| p.depth).min() else {
        return; // unreachable: the queue never yields an empty batch
    };
    // Transient-straggler injection (Fig. 11): one delay per vertex access.
    if let Some(d) = sh.faults.charge(min_depth) {
        sh.metrics.injected_delays.fetch_add(1, Ordering::Relaxed);
        crate::faults::sleep_exact(d);
    }
    // One real vertex access serves all merged parts. Every part of a
    // pop belongs to one travel, so one read view covers them all.
    let vdata = sh
        .partition
        .get_vertex_at(vertex, plan_view(&parts[0].req.plan))
        .ok()
        .flatten();
    sh.metrics.real_io_visits.fetch_add(1, Ordering::Relaxed);
    // Group by depth, preserving order.
    let mut by_depth: BTreeMap<u16, Vec<WorkItem>> = BTreeMap::new();
    for part in parts {
        by_depth.entry(part.depth).or_default().push(part);
    }
    let combined = by_depth.len() as u64 - 1;
    if combined > 0 {
        sh.metrics
            .combined_visits
            .fetch_add(combined, Ordering::Relaxed);
    }
    let dup_redundant: u64 = by_depth.values().map(|g| g.len() as u64 - 1).sum();
    sh.metrics.travel_mut(travel, |t| {
        t.real_io_visits += 1;
        t.combined_visits += combined;
        t.redundant_visits += dup_redundant;
        t.queue_wait_ns += wait_ns;
        t.queue_popped += n_parts;
    });
    // Edge scans shared across merged parts that follow the same label.
    let mut edge_cache: HashMap<String, Arc<Vec<(VertexId, Props)>>> = HashMap::new();
    for (_, group) in by_depth {
        if group.len() > 1 {
            sh.metrics
                .redundant_visits
                .fetch_add(group.len() as u64 - 1, Ordering::Relaxed);
        }
        // Union the duplicates' tokens into the lead part.
        let mut lead = group[0].clone();
        for twin in &group[1..] {
            for t in &twin.tokens {
                if !lead.tokens.contains(t) {
                    lead.tokens.push(*t);
                }
            }
        }
        process_one(sh, &vdata, &lead, &mut edge_cache);
        for part in group {
            if part.req.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                flush_request(sh, &part.req);
            }
        }
    }
}

fn process_one(
    sh: &Arc<Shared>,
    vdata: &Option<gt_graph::Vertex>,
    part: &WorkItem,
    edge_cache: &mut HashMap<String, Arc<Vec<(VertexId, Props)>>>,
) {
    let Some(v) = vdata else { return };
    let plan = &part.req.plan;
    let depth = part.depth;
    if !vertex_matches(&v.vtype, &v.props, plan.vertex_filters_at(depth)) {
        return;
    }
    let mut tokens = part.tokens.clone();
    if plan.rtn_at(depth) {
        let id = register_token(sh, part.req.travel, depth, v.id);
        let own = Token {
            owner: sh.id as u16,
            id,
        };
        if !tokens.contains(&own) {
            tokens.push(own);
        }
    }
    if depth == plan.depth() {
        // End of the chain: the path completed.
        let mut out = part.req.out.lock();
        if plan.returns_final() {
            out.results.push((depth, v.id));
        }
        out.satisfied.extend(tokens.iter().copied());
        return;
    }
    let Some(hop) = plan.hop_from(depth) else {
        return; // unreachable: depth < plan.depth() always has a next hop
    };
    let edges = match edge_cache.get(&hop.edge_label) {
        Some(e) => e.clone(),
        None => {
            let scanned = sh
                .partition
                .edges_out_at(v.id, &hop.edge_label, plan_view(plan))
                .unwrap_or_default();
            let arc = Arc::new(scanned);
            edge_cache.insert(hop.edge_label.clone(), arc.clone());
            arc
        }
    };
    let mut out = part.req.out.lock();
    for (dst, eprops) in edges.iter() {
        if !hop.edge_filters.matches(eprops) {
            continue;
        }
        let owner = route_frontier_read(sh, part.req.travel, *dst);
        out.dst_by_owner
            .entry(owner)
            .or_default()
            .entry(*dst)
            .or_default()
            .extend(tokens.iter().copied());
    }
}

/// Where to send the next-hop visit of `dst`: the primary, or — with
/// replica reads on — a deterministic spread over every holder of the
/// vertex's partition. Any holder carries a full copy (the synchronous
/// ingest fan-out keeps replicas current before the ack), and traversal
/// results are per-depth sets, so holder choice never changes the
/// outcome — only where the storage reads land. The hash is keyed by
/// (travel, vertex) so one travel's visits of a vertex converge on one
/// holder (preserving execution merging) while different travels spread.
fn route_frontier_read(sh: &Arc<Shared>, travel: TravelId, dst: VertexId) -> usize {
    let holders = if sh.replica_reads {
        sh.placement.holders_of_vid(dst)
    } else {
        Vec::new()
    };
    if holders.len() < 2 {
        return sh.placement.primary_of_vid(dst);
    }
    let pick = holders[(gt_graph::splitmix64(travel ^ dst.0) % holders.len() as u64) as usize];
    if pick != sh.placement.primary_of_vid(dst) {
        sh.metrics.replica_reads.fetch_add(1, Ordering::Relaxed);
    }
    pick
}

fn register_token(sh: &Arc<Shared>, travel: TravelId, depth: u16, vertex: VertexId) -> u64 {
    let mut reg = sh.tokens.lock();
    if let Some(&id) = reg.by_key.get(&(travel, depth, vertex)) {
        return id;
    }
    let id = sh.token_ctr.fetch_add(1, Ordering::Relaxed);
    reg.by_key.insert((travel, depth, vertex), id);
    reg.records.insert(
        (travel, id),
        TokenRecord {
            depth,
            vertex,
            released: false,
        },
    );
    id
}

/// Flush a completed execution: dispatch its accumulated output and report
/// the tracing events (§IV-B/C for async, the step-done protocol for sync).
fn flush_request(sh: &Arc<Shared>, req: &RequestState) {
    let out = std::mem::take(&mut *req.out.lock());
    let travel = req.travel;
    // Group satisfied tokens by owning server.
    let mut satisfied_by_owner: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for t in &out.satisfied {
        satisfied_by_owner
            .entry(t.owner as usize)
            .or_default()
            .push(t.id);
    }
    match req.mode {
        ReqMode::Async => {
            let mut children: Vec<(ExecId, u16)> = Vec::new();
            for (owner, map) in out.dst_by_owner {
                let child = alloc_exec(sh);
                children.push((child, req.depth + 1));
                send_travel(
                    sh,
                    req.coordinator,
                    travel,
                    req.tepoch,
                    Msg::ExecCreated {
                        travel,
                        exec: child,
                        depth: req.depth + 1,
                    },
                );
                let items: Vec<(VertexId, Tokens)> = map
                    .into_iter()
                    .map(|(v, toks)| (v, toks.into_iter().collect()))
                    .collect();
                sh.metrics
                    .requests_dispatched
                    .fetch_add(1, Ordering::Relaxed);
                send_travel(
                    sh,
                    owner,
                    travel,
                    req.tepoch,
                    Msg::Visit {
                        travel,
                        depth: req.depth + 1,
                        exec: child,
                        plan: req.plan.clone(),
                        coordinator: req.coordinator,
                        items,
                    },
                );
            }
            let virtual_depth = req.plan.depth() + 1;
            for (owner, tokens) in satisfied_by_owner {
                let syn = alloc_exec(sh);
                children.push((syn, virtual_depth));
                send_travel(
                    sh,
                    req.coordinator,
                    travel,
                    req.tepoch,
                    Msg::ExecCreated {
                        travel,
                        exec: syn,
                        depth: virtual_depth,
                    },
                );
                send_travel(
                    sh,
                    owner,
                    travel,
                    req.tepoch,
                    Msg::OriginSatisfied {
                        travel,
                        exec: syn,
                        coordinator: req.coordinator,
                        tokens,
                    },
                );
            }
            if !out.results.is_empty() {
                sh.metrics
                    .results_sent
                    .fetch_add(out.results.len() as u64, Ordering::Relaxed);
                send_travel(
                    sh,
                    req.coordinator,
                    travel,
                    req.tepoch,
                    Msg::Results {
                        travel,
                        items: out.results,
                    },
                );
            }
            // Termination last, registering children atomically (§IV-C).
            send_travel(
                sh,
                req.coordinator,
                travel,
                req.tepoch,
                Msg::ExecTerminated {
                    travel,
                    exec: req.exec,
                    children,
                },
            );
        }
        ReqMode::SyncStep => {
            let mut sent: Vec<(usize, u64)> = Vec::new();
            for (owner, map) in out.dst_by_owner {
                sent.push((owner, map.len() as u64));
                let items: Vec<(VertexId, Tokens)> = map
                    .into_iter()
                    .map(|(v, toks)| (v, toks.into_iter().collect()))
                    .collect();
                sh.metrics
                    .requests_dispatched
                    .fetch_add(1, Ordering::Relaxed);
                send_travel(
                    sh,
                    owner,
                    travel,
                    req.tepoch,
                    Msg::SyncFrontier {
                        travel,
                        depth: req.depth + 1,
                        items,
                    },
                );
            }
            let mut origin_sent: Vec<(usize, u64)> = Vec::new();
            for (owner, tokens) in satisfied_by_owner {
                origin_sent.push((owner, tokens.len() as u64));
                send_travel(
                    sh,
                    owner,
                    travel,
                    req.tepoch,
                    Msg::SyncOrigin { travel, tokens },
                );
            }
            if !out.results.is_empty() {
                sh.metrics
                    .results_sent
                    .fetch_add(out.results.len() as u64, Ordering::Relaxed);
                send_travel(
                    sh,
                    req.coordinator,
                    travel,
                    req.tepoch,
                    Msg::Results {
                        travel,
                        items: out.results,
                    },
                );
            }
            send_travel(
                sh,
                req.coordinator,
                travel,
                req.tepoch,
                Msg::SyncStepDone {
                    travel,
                    depth: req.depth,
                    server: sh.id,
                    sent,
                    origin_sent,
                },
            );
        }
    }
}
