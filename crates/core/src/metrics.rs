//! Per-server traversal instrumentation.
//!
//! §VII-A: "we placed instruments inside the GraphTrek engine to collect
//! the statistics during the execution. In each server, we collected three
//! statistics: (1) redundant visits … (2) combined visits … (3) real I/O
//! visits … The sum of these three numbers equals the total vertex
//! requests received in one server during the traversal." These counters
//! regenerate Fig. 7; the queue/messaging counters support the remaining
//! analysis.

use crate::TravelId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Cap on travels tracked per server; the oldest (smallest id) entries
/// are pruned beyond this, bounding memory across long multi-tenant runs.
const MAX_TRACKED_TRAVELS: usize = 512;

/// Lock-free counters for one backend server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Vertex requests whose `(travel, step, vertex)` triple hit the
    /// traversal-affiliate cache and were abandoned.
    pub redundant_visits: AtomicU64,
    /// Vertex requests served by merging with a same-vertex request at a
    /// different step (one disk access amortized over several steps).
    pub combined_visits: AtomicU64,
    /// Vertex requests that performed a real storage access.
    pub real_io_visits: AtomicU64,
    /// Traversal-request messages received.
    pub requests_received: AtomicU64,
    /// Traversal-request messages dispatched to downstream servers.
    pub requests_dispatched: AtomicU64,
    /// Result vertices sent toward the coordinator / report destination.
    pub results_sent: AtomicU64,
    /// High-water mark of the local request queue.
    pub queue_peak: AtomicUsize,
    /// Straggler delay events injected on this server (Fig. 11 model).
    pub injected_delays: AtomicU64,
    /// Relay retransmissions sent (reliable-delivery layer; zero with
    /// chaos off).
    pub relay_retries: AtomicU64,
    /// Relayed messages received more than once and deduped.
    pub redeliveries: AtomicU64,
    /// Relayed messages discarded by epoch fencing (stale pre-crash
    /// incarnation of a peer).
    pub stale_epoch_dropped: AtomicU64,
    /// Scripted crashes this server executed.
    pub crashes: AtomicU64,
    /// Restart-and-recovery cycles this server completed.
    pub recoveries: AtomicU64,
    /// Travels whose ledger this server rebuilt from a durable event
    /// stream (coordinator-failover takeovers).
    pub ledger_replays: AtomicU64,
    /// Durable ledger events applied across all replays.
    pub ledger_events_replayed: AtomicU64,
    /// Coordinator failovers this server absorbed as the successor.
    pub failovers: AtomicU64,
    /// Per-travel re-announce reports received while recovering a
    /// ledger (one per live server per failover).
    pub reannounce_msgs: AtomicU64,
    /// Relayed messages discarded by travel-epoch fencing (stale work
    /// from a pre-failover execution tree).
    pub stale_travel_epoch_dropped: AtomicU64,
    /// Placement-map installs accepted by this server (epoch-fenced; a
    /// stale map is rejected and not counted).
    pub placement_updates: AtomicU64,
    /// Graph mutations applied on this server as a replica (shipped from
    /// the partition primary).
    pub replica_writes: AtomicU64,
    /// Durable travel-ledger blobs this server stored on behalf of a
    /// peer's ledger (coordinator-loss protection at rf >= 2).
    pub ledger_blobs_replicated: AtomicU64,
    /// Migration snapshot/delta chunks sent by this server as a source.
    pub migrate_chunks_out: AtomicU64,
    /// Migration snapshot/delta chunks applied by this server as a target.
    pub migrate_chunks_in: AtomicU64,
    /// Sent-journal compactions performed (bounding per-travel memory).
    pub journal_compactions: AtomicU64,
    /// High-water mark of live sent-journal entries across all travels.
    pub journal_peak_entries: AtomicU64,
    /// Heartbeat messages this server sent to peers (failure detector).
    pub heartbeats_sent: AtomicU64,
    /// Heartbeat messages this server received from peers.
    pub heartbeats_recv: AtomicU64,
    /// Suspicions this server raised (phi crossed the threshold).
    pub suspicions_raised: AtomicU64,
    /// Suspicions the healer rejected because the peer was in fact alive
    /// (delay-induced false positives; the detector window then resets).
    pub false_suspicions: AtomicU64,
    /// Automatic promotions executed by the self-healing loop on behalf
    /// of partitions this server now primaries (no client involvement).
    pub auto_promotions: AtomicU64,
    /// Background re-replication flows this server completed as the new
    /// replica target (restoring `rf` copies after a promotion).
    pub rereplications: AtomicU64,
    /// Re-replication snapshot/delta chunks sent by this server as the
    /// source primary.
    pub rereplicate_chunks_out: AtomicU64,
    /// Re-replication snapshot/delta chunks applied by this server as the
    /// new replica target.
    pub rereplicate_chunks_in: AtomicU64,
    /// Point/frontier reads this server served (or the client routed) to
    /// a non-primary holder (replica-read routing).
    pub replica_reads: AtomicU64,
    /// Reads parked at a replica until its applied-write watermark caught
    /// up with the client's read barrier (read-your-replication rule).
    pub read_barrier_stalls: AtomicU64,
    /// Snapshot read views pinned on this server's store (mirrored from
    /// the store's MVCC machinery; one per admitted travel under
    /// snapshot isolation).
    pub views_pinned: AtomicU64,
    /// High-water mark of simultaneously pinned views on this server.
    pub view_pin_peak: AtomicU64,
    /// Versioned reads that skipped at least one version newer than the
    /// travel's read view (the isolation machinery actually mattered).
    pub stale_seq_reads: AtomicU64,
    /// Store compactions deferred because a pinned view could still
    /// observe a version the merge would have dropped.
    pub compactions_deferred: AtomicU64,
    /// Per-travel splits of the same counters (concurrent-travel
    /// accounting; bounded to [`MAX_TRACKED_TRAVELS`] entries).
    per_travel: Mutex<BTreeMap<TravelId, TravelMetrics>>,
}

impl ServerMetrics {
    /// Record a new queue length, keeping the maximum.
    pub fn observe_queue_len(&self, len: usize) {
        self.queue_peak.fetch_max(len, Ordering::Relaxed);
    }

    /// Update one travel's counters, creating (and bounding) the entry.
    pub fn travel_mut(&self, travel: TravelId, f: impl FnOnce(&mut TravelMetrics)) {
        let mut map = self.per_travel.lock();
        f(map.entry(travel).or_default());
        while map.len() > MAX_TRACKED_TRAVELS {
            map.pop_first();
        }
    }

    /// One travel's counters on this server (zeros if never seen).
    pub fn travel_snapshot(&self, travel: TravelId) -> TravelMetrics {
        self.per_travel
            .lock()
            .get(&travel)
            .copied()
            .unwrap_or_default()
    }

    /// Every tracked travel's counters on this server.
    pub fn travel_snapshots(&self) -> Vec<(TravelId, TravelMetrics)> {
        self.per_travel
            .lock()
            .iter()
            .map(|(&t, &m)| (t, m))
            .collect()
    }

    /// Plain-value snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            redundant_visits: self.redundant_visits.load(Ordering::Relaxed),
            combined_visits: self.combined_visits.load(Ordering::Relaxed),
            real_io_visits: self.real_io_visits.load(Ordering::Relaxed),
            requests_received: self.requests_received.load(Ordering::Relaxed),
            requests_dispatched: self.requests_dispatched.load(Ordering::Relaxed),
            results_sent: self.results_sent.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            injected_delays: self.injected_delays.load(Ordering::Relaxed),
            relay_retries: self.relay_retries.load(Ordering::Relaxed),
            redeliveries: self.redeliveries.load(Ordering::Relaxed),
            stale_epoch_dropped: self.stale_epoch_dropped.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            ledger_replays: self.ledger_replays.load(Ordering::Relaxed),
            ledger_events_replayed: self.ledger_events_replayed.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            reannounce_msgs: self.reannounce_msgs.load(Ordering::Relaxed),
            stale_travel_epoch_dropped: self.stale_travel_epoch_dropped.load(Ordering::Relaxed),
            placement_updates: self.placement_updates.load(Ordering::Relaxed),
            replica_writes: self.replica_writes.load(Ordering::Relaxed),
            ledger_blobs_replicated: self.ledger_blobs_replicated.load(Ordering::Relaxed),
            migrate_chunks_out: self.migrate_chunks_out.load(Ordering::Relaxed),
            migrate_chunks_in: self.migrate_chunks_in.load(Ordering::Relaxed),
            journal_compactions: self.journal_compactions.load(Ordering::Relaxed),
            journal_peak_entries: self.journal_peak_entries.load(Ordering::Relaxed),
            heartbeats_sent: self.heartbeats_sent.load(Ordering::Relaxed),
            heartbeats_recv: self.heartbeats_recv.load(Ordering::Relaxed),
            suspicions_raised: self.suspicions_raised.load(Ordering::Relaxed),
            false_suspicions: self.false_suspicions.load(Ordering::Relaxed),
            auto_promotions: self.auto_promotions.load(Ordering::Relaxed),
            rereplications: self.rereplications.load(Ordering::Relaxed),
            rereplicate_chunks_out: self.rereplicate_chunks_out.load(Ordering::Relaxed),
            rereplicate_chunks_in: self.rereplicate_chunks_in.load(Ordering::Relaxed),
            replica_reads: self.replica_reads.load(Ordering::Relaxed),
            read_barrier_stalls: self.read_barrier_stalls.load(Ordering::Relaxed),
            views_pinned: self.views_pinned.load(Ordering::Relaxed),
            view_pin_peak: self.view_pin_peak.load(Ordering::Relaxed),
            stale_seq_reads: self.stale_seq_reads.load(Ordering::Relaxed),
            compactions_deferred: self.compactions_deferred.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (between experiment runs).
    pub fn reset(&self) {
        self.redundant_visits.store(0, Ordering::Relaxed);
        self.combined_visits.store(0, Ordering::Relaxed);
        self.real_io_visits.store(0, Ordering::Relaxed);
        self.requests_received.store(0, Ordering::Relaxed);
        self.requests_dispatched.store(0, Ordering::Relaxed);
        self.results_sent.store(0, Ordering::Relaxed);
        self.queue_peak.store(0, Ordering::Relaxed);
        self.injected_delays.store(0, Ordering::Relaxed);
        self.relay_retries.store(0, Ordering::Relaxed);
        self.redeliveries.store(0, Ordering::Relaxed);
        self.stale_epoch_dropped.store(0, Ordering::Relaxed);
        self.crashes.store(0, Ordering::Relaxed);
        self.recoveries.store(0, Ordering::Relaxed);
        self.ledger_replays.store(0, Ordering::Relaxed);
        self.ledger_events_replayed.store(0, Ordering::Relaxed);
        self.failovers.store(0, Ordering::Relaxed);
        self.reannounce_msgs.store(0, Ordering::Relaxed);
        self.stale_travel_epoch_dropped.store(0, Ordering::Relaxed);
        self.placement_updates.store(0, Ordering::Relaxed);
        self.replica_writes.store(0, Ordering::Relaxed);
        self.ledger_blobs_replicated.store(0, Ordering::Relaxed);
        self.migrate_chunks_out.store(0, Ordering::Relaxed);
        self.migrate_chunks_in.store(0, Ordering::Relaxed);
        self.journal_compactions.store(0, Ordering::Relaxed);
        self.journal_peak_entries.store(0, Ordering::Relaxed);
        self.heartbeats_sent.store(0, Ordering::Relaxed);
        self.heartbeats_recv.store(0, Ordering::Relaxed);
        self.suspicions_raised.store(0, Ordering::Relaxed);
        self.false_suspicions.store(0, Ordering::Relaxed);
        self.auto_promotions.store(0, Ordering::Relaxed);
        self.rereplications.store(0, Ordering::Relaxed);
        self.rereplicate_chunks_out.store(0, Ordering::Relaxed);
        self.rereplicate_chunks_in.store(0, Ordering::Relaxed);
        self.replica_reads.store(0, Ordering::Relaxed);
        self.read_barrier_stalls.store(0, Ordering::Relaxed);
        self.views_pinned.store(0, Ordering::Relaxed);
        self.view_pin_peak.store(0, Ordering::Relaxed);
        self.stale_seq_reads.store(0, Ordering::Relaxed);
        self.compactions_deferred.store(0, Ordering::Relaxed);
        self.per_travel.lock().clear();
    }
}

/// One travel's share of a server's traversal work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TravelMetrics {
    /// Redundant visits attributed to this travel.
    pub redundant_visits: u64,
    /// Combined (merged-step) visits attributed to this travel.
    pub combined_visits: u64,
    /// Real storage accesses attributed to this travel.
    pub real_io_visits: u64,
    /// Total nanoseconds its requests sat in the local queue.
    pub queue_wait_ns: u64,
    /// Requests popped from the queue for this travel.
    pub queue_popped: u64,
}

impl TravelMetrics {
    /// Mean queue residency per popped request, in nanoseconds.
    pub fn mean_queue_wait_ns(&self) -> u64 {
        self.queue_wait_ns
            .checked_div(self.queue_popped)
            .unwrap_or(0)
    }

    /// Element-wise sum (aggregating one travel across servers).
    pub fn merge(&mut self, other: &TravelMetrics) {
        self.redundant_visits += other.redundant_visits;
        self.combined_visits += other.combined_visits;
        self.real_io_visits += other.real_io_visits;
        self.queue_wait_ns += other.queue_wait_ns;
        self.queue_popped += other.queue_popped;
    }
}

/// Point-in-time copy of [`ServerMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`ServerMetrics::redundant_visits`].
    pub redundant_visits: u64,
    /// See [`ServerMetrics::combined_visits`].
    pub combined_visits: u64,
    /// See [`ServerMetrics::real_io_visits`].
    pub real_io_visits: u64,
    /// See [`ServerMetrics::requests_received`].
    pub requests_received: u64,
    /// See [`ServerMetrics::requests_dispatched`].
    pub requests_dispatched: u64,
    /// See [`ServerMetrics::results_sent`].
    pub results_sent: u64,
    /// See [`ServerMetrics::queue_peak`].
    pub queue_peak: usize,
    /// See [`ServerMetrics::injected_delays`].
    pub injected_delays: u64,
    /// See [`ServerMetrics::relay_retries`].
    pub relay_retries: u64,
    /// See [`ServerMetrics::redeliveries`].
    pub redeliveries: u64,
    /// See [`ServerMetrics::stale_epoch_dropped`].
    pub stale_epoch_dropped: u64,
    /// See [`ServerMetrics::crashes`].
    pub crashes: u64,
    /// See [`ServerMetrics::recoveries`].
    pub recoveries: u64,
    /// See [`ServerMetrics::ledger_replays`].
    pub ledger_replays: u64,
    /// See [`ServerMetrics::ledger_events_replayed`].
    pub ledger_events_replayed: u64,
    /// See [`ServerMetrics::failovers`].
    pub failovers: u64,
    /// See [`ServerMetrics::reannounce_msgs`].
    pub reannounce_msgs: u64,
    /// See [`ServerMetrics::stale_travel_epoch_dropped`].
    pub stale_travel_epoch_dropped: u64,
    /// See [`ServerMetrics::placement_updates`].
    pub placement_updates: u64,
    /// See [`ServerMetrics::replica_writes`].
    pub replica_writes: u64,
    /// See [`ServerMetrics::ledger_blobs_replicated`].
    pub ledger_blobs_replicated: u64,
    /// See [`ServerMetrics::migrate_chunks_out`].
    pub migrate_chunks_out: u64,
    /// See [`ServerMetrics::migrate_chunks_in`].
    pub migrate_chunks_in: u64,
    /// See [`ServerMetrics::journal_compactions`].
    pub journal_compactions: u64,
    /// See [`ServerMetrics::journal_peak_entries`].
    pub journal_peak_entries: u64,
    /// See [`ServerMetrics::heartbeats_sent`].
    pub heartbeats_sent: u64,
    /// See [`ServerMetrics::heartbeats_recv`].
    pub heartbeats_recv: u64,
    /// See [`ServerMetrics::suspicions_raised`].
    pub suspicions_raised: u64,
    /// See [`ServerMetrics::false_suspicions`].
    pub false_suspicions: u64,
    /// See [`ServerMetrics::auto_promotions`].
    pub auto_promotions: u64,
    /// See [`ServerMetrics::rereplications`].
    pub rereplications: u64,
    /// See [`ServerMetrics::rereplicate_chunks_out`].
    pub rereplicate_chunks_out: u64,
    /// See [`ServerMetrics::rereplicate_chunks_in`].
    pub rereplicate_chunks_in: u64,
    /// See [`ServerMetrics::replica_reads`].
    pub replica_reads: u64,
    /// See [`ServerMetrics::read_barrier_stalls`].
    pub read_barrier_stalls: u64,
    /// See [`ServerMetrics::views_pinned`].
    pub views_pinned: u64,
    /// See [`ServerMetrics::view_pin_peak`].
    pub view_pin_peak: u64,
    /// See [`ServerMetrics::stale_seq_reads`].
    pub stale_seq_reads: u64,
    /// See [`ServerMetrics::compactions_deferred`].
    pub compactions_deferred: u64,
}

impl MetricsSnapshot {
    /// Total vertex requests = redundant + combined + real I/O (§VII-A's
    /// accounting identity).
    pub fn total_vertex_requests(&self) -> u64 {
        self.redundant_visits + self.combined_visits + self.real_io_visits
    }

    /// Every counter belonging to the fault machinery (reliable delivery,
    /// chaos absorption, crash/failover recovery), as `(name, value)`
    /// pairs. The chaos-off dormancy test asserts each entry is exactly
    /// zero, so a new fault counter added here is automatically covered —
    /// and gt-lint's `dead-counter` rule makes sure it cannot be added to
    /// the struct without being wired up at all.
    pub fn fault_counters(&self) -> [(&'static str, u64); 10] {
        [
            ("relay_retries", self.relay_retries),
            ("redeliveries", self.redeliveries),
            ("stale_epoch_dropped", self.stale_epoch_dropped),
            ("crashes", self.crashes),
            ("recoveries", self.recoveries),
            ("ledger_replays", self.ledger_replays),
            ("ledger_events_replayed", self.ledger_events_replayed),
            ("failovers", self.failovers),
            ("reannounce_msgs", self.reannounce_msgs),
            (
                "stale_travel_epoch_dropped",
                self.stale_travel_epoch_dropped,
            ),
        ]
    }

    /// The failover-specific subset of [`Self::fault_counters`]: counters
    /// that must stay zero on a healthy cluster even when reliable
    /// delivery itself is enabled (retries/redeliveries are legitimate
    /// under load; a ledger replay never is).
    pub fn failover_counters(&self) -> [(&'static str, u64); 5] {
        [
            ("ledger_replays", self.ledger_replays),
            ("ledger_events_replayed", self.ledger_events_replayed),
            ("failovers", self.failovers),
            ("reannounce_msgs", self.reannounce_msgs),
            (
                "stale_travel_epoch_dropped",
                self.stale_travel_epoch_dropped,
            ),
        ]
    }

    /// Every counter belonging to the placement machinery (map
    /// propagation, write/ledger replication, shard migration). On a
    /// static single-replica cluster — no `rebalance()`,
    /// `decommission()`, or `promote()`, replication factor 1 — each of
    /// these is exactly zero, and the dormancy test asserts so.
    pub fn placement_counters(&self) -> [(&'static str, u64); 5] {
        [
            ("placement_updates", self.placement_updates),
            ("replica_writes", self.replica_writes),
            ("ledger_blobs_replicated", self.ledger_blobs_replicated),
            ("migrate_chunks_out", self.migrate_chunks_out),
            ("migrate_chunks_in", self.migrate_chunks_in),
        ]
    }

    /// Every counter belonging to the self-healing machinery (failure
    /// detection, automatic promotion, background re-replication, replica
    /// reads). With detection disabled and replica reads off — the
    /// defaults — each of these is exactly zero on a static cluster, and
    /// the dormancy test asserts so.
    pub fn self_heal_counters(&self) -> [(&'static str, u64); 10] {
        [
            ("heartbeats_sent", self.heartbeats_sent),
            ("heartbeats_recv", self.heartbeats_recv),
            ("suspicions_raised", self.suspicions_raised),
            ("false_suspicions", self.false_suspicions),
            ("auto_promotions", self.auto_promotions),
            ("rereplications", self.rereplications),
            ("rereplicate_chunks_out", self.rereplicate_chunks_out),
            ("rereplicate_chunks_in", self.rereplicate_chunks_in),
            ("replica_reads", self.replica_reads),
            ("read_barrier_stalls", self.read_barrier_stalls),
        ]
    }

    /// Every counter belonging to the MVCC snapshot machinery (view
    /// pinning, versioned reads, compaction deferral). With snapshot
    /// isolation off — the default — each of these is exactly zero, and
    /// the dormancy test asserts so.
    pub fn snapshot_counters(&self) -> [(&'static str, u64); 4] {
        [
            ("views_pinned", self.views_pinned),
            ("view_pin_peak", self.view_pin_peak),
            ("stale_seq_reads", self.stale_seq_reads),
            ("compactions_deferred", self.compactions_deferred),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_identity() {
        let m = ServerMetrics::default();
        m.redundant_visits.fetch_add(3, Ordering::Relaxed);
        m.combined_visits.fetch_add(2, Ordering::Relaxed);
        m.real_io_visits.fetch_add(5, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.total_vertex_requests(), 10);
    }

    #[test]
    fn queue_peak_keeps_max() {
        let m = ServerMetrics::default();
        m.observe_queue_len(5);
        m.observe_queue_len(2);
        m.observe_queue_len(9);
        m.observe_queue_len(1);
        assert_eq!(m.snapshot().queue_peak, 9);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = ServerMetrics::default();
        m.real_io_visits.fetch_add(5, Ordering::Relaxed);
        m.observe_queue_len(7);
        m.travel_mut(3, |t| t.real_io_visits += 5);
        m.relay_retries.fetch_add(2, Ordering::Relaxed);
        m.redeliveries.fetch_add(3, Ordering::Relaxed);
        m.stale_epoch_dropped.fetch_add(1, Ordering::Relaxed);
        m.crashes.fetch_add(1, Ordering::Relaxed);
        m.recoveries.fetch_add(1, Ordering::Relaxed);
        m.ledger_replays.fetch_add(1, Ordering::Relaxed);
        m.ledger_events_replayed.fetch_add(9, Ordering::Relaxed);
        m.failovers.fetch_add(1, Ordering::Relaxed);
        m.reannounce_msgs.fetch_add(3, Ordering::Relaxed);
        m.stale_travel_epoch_dropped.fetch_add(4, Ordering::Relaxed);
        assert_eq!(m.snapshot().relay_retries, 2);
        assert_eq!(m.snapshot().redeliveries, 3);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert_eq!(m.travel_snapshot(3), TravelMetrics::default());
    }

    #[test]
    fn per_travel_counters_are_isolated_and_merged() {
        let m = ServerMetrics::default();
        m.travel_mut(1, |t| {
            t.real_io_visits += 2;
            t.queue_wait_ns += 1000;
            t.queue_popped += 2;
        });
        m.travel_mut(2, |t| t.redundant_visits += 7);
        assert_eq!(m.travel_snapshot(1).real_io_visits, 2);
        assert_eq!(m.travel_snapshot(1).mean_queue_wait_ns(), 500);
        assert_eq!(m.travel_snapshot(2).redundant_visits, 7);
        assert_eq!(m.travel_snapshot(2).real_io_visits, 0);
        let mut agg = m.travel_snapshot(1);
        agg.merge(&m.travel_snapshot(2));
        assert_eq!(agg.real_io_visits, 2);
        assert_eq!(agg.redundant_visits, 7);
        assert_eq!(m.travel_snapshots().len(), 2);
    }

    #[test]
    fn per_travel_map_is_bounded() {
        let m = ServerMetrics::default();
        for t in 0..2 * MAX_TRACKED_TRAVELS as u64 {
            m.travel_mut(t, |tm| tm.queue_popped += 1);
        }
        let snaps = m.travel_snapshots();
        assert_eq!(snaps.len(), MAX_TRACKED_TRAVELS);
        // The newest travels survive; the oldest were pruned.
        assert_eq!(snaps[0].0, MAX_TRACKED_TRAVELS as u64);
    }
}
