//! Per-server traversal instrumentation.
//!
//! §VII-A: "we placed instruments inside the GraphTrek engine to collect
//! the statistics during the execution. In each server, we collected three
//! statistics: (1) redundant visits … (2) combined visits … (3) real I/O
//! visits … The sum of these three numbers equals the total vertex
//! requests received in one server during the traversal." These counters
//! regenerate Fig. 7; the queue/messaging counters support the remaining
//! analysis.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Lock-free counters for one backend server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Vertex requests whose `(travel, step, vertex)` triple hit the
    /// traversal-affiliate cache and were abandoned.
    pub redundant_visits: AtomicU64,
    /// Vertex requests served by merging with a same-vertex request at a
    /// different step (one disk access amortized over several steps).
    pub combined_visits: AtomicU64,
    /// Vertex requests that performed a real storage access.
    pub real_io_visits: AtomicU64,
    /// Traversal-request messages received.
    pub requests_received: AtomicU64,
    /// Traversal-request messages dispatched to downstream servers.
    pub requests_dispatched: AtomicU64,
    /// Result vertices sent toward the coordinator / report destination.
    pub results_sent: AtomicU64,
    /// High-water mark of the local request queue.
    pub queue_peak: AtomicUsize,
    /// Straggler delay events injected on this server (Fig. 11 model).
    pub injected_delays: AtomicU64,
}

impl ServerMetrics {
    /// Record a new queue length, keeping the maximum.
    pub fn observe_queue_len(&self, len: usize) {
        self.queue_peak.fetch_max(len, Ordering::Relaxed);
    }

    /// Plain-value snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            redundant_visits: self.redundant_visits.load(Ordering::Relaxed),
            combined_visits: self.combined_visits.load(Ordering::Relaxed),
            real_io_visits: self.real_io_visits.load(Ordering::Relaxed),
            requests_received: self.requests_received.load(Ordering::Relaxed),
            requests_dispatched: self.requests_dispatched.load(Ordering::Relaxed),
            results_sent: self.results_sent.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            injected_delays: self.injected_delays.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter (between experiment runs).
    pub fn reset(&self) {
        self.redundant_visits.store(0, Ordering::Relaxed);
        self.combined_visits.store(0, Ordering::Relaxed);
        self.real_io_visits.store(0, Ordering::Relaxed);
        self.requests_received.store(0, Ordering::Relaxed);
        self.requests_dispatched.store(0, Ordering::Relaxed);
        self.results_sent.store(0, Ordering::Relaxed);
        self.queue_peak.store(0, Ordering::Relaxed);
        self.injected_delays.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of [`ServerMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`ServerMetrics::redundant_visits`].
    pub redundant_visits: u64,
    /// See [`ServerMetrics::combined_visits`].
    pub combined_visits: u64,
    /// See [`ServerMetrics::real_io_visits`].
    pub real_io_visits: u64,
    /// See [`ServerMetrics::requests_received`].
    pub requests_received: u64,
    /// See [`ServerMetrics::requests_dispatched`].
    pub requests_dispatched: u64,
    /// See [`ServerMetrics::results_sent`].
    pub results_sent: u64,
    /// See [`ServerMetrics::queue_peak`].
    pub queue_peak: usize,
    /// See [`ServerMetrics::injected_delays`].
    pub injected_delays: u64,
}

impl MetricsSnapshot {
    /// Total vertex requests = redundant + combined + real I/O (§VII-A's
    /// accounting identity).
    pub fn total_vertex_requests(&self) -> u64 {
        self.redundant_visits + self.combined_visits + self.real_io_visits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_identity() {
        let m = ServerMetrics::default();
        m.redundant_visits.fetch_add(3, Ordering::Relaxed);
        m.combined_visits.fetch_add(2, Ordering::Relaxed);
        m.real_io_visits.fetch_add(5, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(s.total_vertex_requests(), 10);
    }

    #[test]
    fn queue_peak_keeps_max() {
        let m = ServerMetrics::default();
        m.observe_queue_len(5);
        m.observe_queue_len(2);
        m.observe_queue_len(9);
        m.observe_queue_len(1);
        assert_eq!(m.snapshot().queue_peak, 9);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = ServerMetrics::default();
        m.real_io_visits.fetch_add(5, Ordering::Relaxed);
        m.observe_queue_len(7);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }
}
