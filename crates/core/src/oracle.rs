//! Single-threaded reference semantics for GTravel plans.
//!
//! The oracle defines *what a traversal means*, independent of any
//! distribution or asynchrony:
//!
//! 1. `F₀` = source vertices passing the source filters.
//! 2. `Fₖ₊₁` = destinations of `Fₖ`'s edges with the step's label that pass
//!    the edge filters and whose vertices pass the step's vertex filters.
//!    Revisiting a vertex in a *different* step is allowed (the paper's
//!    deliberate departure from BFS, §II-C); within a step the working set
//!    is dedup'd.
//! 3. A vertex in a `rtn()`-marked working set is *returned* iff at least
//!    one of its continuation paths reaches the end of the chain (§IV-D).
//!    Without any `rtn()`, the final working set is returned.
//!
//! Every distributed engine is property-tested against this oracle.

use crate::lang::{vertex_matches, Plan, Source};
use gt_graph::{InMemoryGraph, VertexId};
use std::collections::{BTreeMap, BTreeSet};

/// Result of a reference traversal: returned vertices per returned depth.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OracleResult {
    /// depth → returned vertex set.
    pub by_depth: BTreeMap<u16, BTreeSet<VertexId>>,
}

impl OracleResult {
    /// Union of every returned depth, sorted and dedup'd.
    pub fn all_vertices(&self) -> Vec<VertexId> {
        let mut set = BTreeSet::new();
        for s in self.by_depth.values() {
            set.extend(s.iter().copied());
        }
        set.into_iter().collect()
    }
}

/// Run `plan` against an in-memory graph.
pub fn traverse(g: &InMemoryGraph, plan: &Plan) -> OracleResult {
    let depth = plan.depth() as usize;

    // Forward pass: working sets per depth.
    let mut frontiers: Vec<BTreeSet<VertexId>> = Vec::with_capacity(depth + 1);
    let source_ids: Vec<VertexId> = match &plan.source {
        Source::Ids(ids) => ids.clone(),
        Source::All => {
            let mut ids: Vec<VertexId> = g.iter_vertices().map(|v| v.id).collect();
            ids.sort_unstable();
            ids
        }
    };
    let f0: BTreeSet<VertexId> = source_ids
        .into_iter()
        .filter(|&vid| {
            g.vertex(vid)
                .is_some_and(|v| vertex_matches(&v.vtype, &v.props, &plan.source_filters))
        })
        .collect();
    frontiers.push(f0);
    for d in 0..depth {
        let step = &plan.steps[d];
        let mut next = BTreeSet::new();
        for &v in &frontiers[d] {
            for (dst, eprops) in g.edges_from(v, &step.edge_label) {
                if !step.edge_filters.matches(eprops) {
                    continue;
                }
                if let Some(w) = g.vertex(*dst) {
                    if vertex_matches(&w.vtype, &w.props, &step.vertex_filters) {
                        next.insert(*dst);
                    }
                }
            }
        }
        frontiers.push(next);
    }

    // Backward pass: which working-set members have a completing path.
    let mut alive: Vec<BTreeSet<VertexId>> = vec![BTreeSet::new(); depth + 1];
    alive[depth] = frontiers[depth].clone();
    for d in (0..depth).rev() {
        let step = &plan.steps[d];
        let next_alive = alive[d + 1].clone();
        alive[d] = frontiers[d]
            .iter()
            .copied()
            .filter(|&v| {
                g.edges_from(v, &step.edge_label)
                    .iter()
                    .any(|(dst, ep)| step.edge_filters.matches(ep) && next_alive.contains(dst))
            })
            .collect();
    }

    let mut by_depth = BTreeMap::new();
    for d in plan.returned_depths() {
        by_depth.insert(d, alive[d as usize].clone());
    }
    OracleResult { by_depth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::GTravel;
    use gt_graph::{Edge, PropFilter, Props, Vertex};

    /// user(1) -run{ts:10}-> exec(2) -read-> file(3 text)
    ///                       exec(2) -read-> file(4 bin)
    /// user(1) -run{ts:99}-> exec(5) -read-> file(3)
    fn audit_graph() -> InMemoryGraph {
        let mut g = InMemoryGraph::new();
        g.add_vertex(Vertex::new(1u64, "User", Props::new().with("name", "a")));
        g.add_vertex(Vertex::new(
            2u64,
            "Execution",
            Props::new().with("model", "A"),
        ));
        g.add_vertex(Vertex::new(
            5u64,
            "Execution",
            Props::new().with("model", "B"),
        ));
        g.add_vertex(Vertex::new(
            3u64,
            "File",
            Props::new().with("ftype", "text"),
        ));
        g.add_vertex(Vertex::new(4u64, "File", Props::new().with("ftype", "bin")));
        g.add_edge(Edge::new(1u64, "run", 2u64, Props::new().with("ts", 10i64)));
        g.add_edge(Edge::new(1u64, "run", 5u64, Props::new().with("ts", 99i64)));
        g.add_edge(Edge::new(2u64, "read", 3u64, Props::new()));
        g.add_edge(Edge::new(2u64, "read", 4u64, Props::new()));
        g.add_edge(Edge::new(5u64, "read", 3u64, Props::new()));
        g
    }

    #[test]
    fn plain_two_step_traversal() {
        let g = audit_graph();
        let p = GTravel::v([1u64]).e("run").e("read").compile().unwrap();
        let r = traverse(&g, &p);
        assert_eq!(r.all_vertices(), vec![VertexId(3), VertexId(4)]);
    }

    #[test]
    fn edge_filter_prunes_paths() {
        let g = audit_graph();
        let p = GTravel::v([1u64])
            .e("run")
            .ea(PropFilter::range("ts", 0i64, 50i64))
            .e("read")
            .compile()
            .unwrap();
        let r = traverse(&g, &p);
        // Only exec 2's reads survive the time window.
        assert_eq!(r.all_vertices(), vec![VertexId(3), VertexId(4)]);
        let p = GTravel::v([1u64])
            .e("run")
            .ea(PropFilter::range("ts", 50i64, 100i64))
            .e("read")
            .compile()
            .unwrap();
        assert_eq!(traverse(&g, &p).all_vertices(), vec![VertexId(3)]);
    }

    #[test]
    fn vertex_filter_on_destination() {
        let g = audit_graph();
        let p = GTravel::v([1u64])
            .e("run")
            .e("read")
            .va(PropFilter::eq("ftype", "text"))
            .compile()
            .unwrap();
        assert_eq!(traverse(&g, &p).all_vertices(), vec![VertexId(3)]);
    }

    #[test]
    fn rtn_returns_only_satisfied_intermediates() {
        let g = audit_graph();
        // Return executions whose reads include a text file — both execs.
        let p = GTravel::v([1u64])
            .e("run")
            .rtn()
            .e("read")
            .va(PropFilter::eq("ftype", "text"))
            .compile()
            .unwrap();
        let r = traverse(&g, &p);
        assert_eq!(r.by_depth[&1], [VertexId(2), VertexId(5)].into());
        // Narrow to bin files: only exec 2 survives; exec 5 is filtered out
        // even though it was in the depth-1 working set.
        let p = GTravel::v([1u64])
            .e("run")
            .rtn()
            .e("read")
            .va(PropFilter::eq("ftype", "bin"))
            .compile()
            .unwrap();
        let r = traverse(&g, &p);
        assert_eq!(r.by_depth[&1], [VertexId(2)].into());
    }

    #[test]
    fn provenance_pattern_source_rtn() {
        let g = audit_graph();
        let p = GTravel::v_all()
            .va(PropFilter::eq("type", "Execution"))
            .rtn()
            .va(PropFilter::eq("model", "A"))
            .e("read")
            .va(PropFilter::eq("ftype", "text"))
            .compile()
            .unwrap();
        let r = traverse(&g, &p);
        assert_eq!(r.by_depth[&0], [VertexId(2)].into());
        assert_eq!(r.by_depth.len(), 1, "final depth not returned");
    }

    #[test]
    fn revisit_across_steps_is_allowed() {
        // a -next-> b -next-> a -next-> b : a 3-step traversal re-visits.
        let mut g = InMemoryGraph::new();
        g.add_vertex(Vertex::new(1u64, "N", Props::new()));
        g.add_vertex(Vertex::new(2u64, "N", Props::new()));
        g.add_edge(Edge::new(1u64, "next", 2u64, Props::new()));
        g.add_edge(Edge::new(2u64, "next", 1u64, Props::new()));
        let p = GTravel::v([1u64])
            .e("next")
            .e("next")
            .e("next")
            .compile()
            .unwrap();
        let r = traverse(&g, &p);
        assert_eq!(r.all_vertices(), vec![VertexId(2)]);
    }

    #[test]
    fn zero_step_plan_returns_filtered_source() {
        let g = audit_graph();
        let p = GTravel::v_all()
            .va(PropFilter::eq("type", "File"))
            .compile()
            .unwrap();
        let r = traverse(&g, &p);
        assert_eq!(r.all_vertices(), vec![VertexId(3), VertexId(4)]);
    }

    #[test]
    fn dead_end_returns_empty() {
        let g = audit_graph();
        let p = GTravel::v([3u64]).e("run").e("read").compile().unwrap();
        assert!(traverse(&g, &p).all_vertices().is_empty());
        // rtn'd source with no completing path returns nothing.
        let p = GTravel::v([3u64]).rtn().e("run").compile().unwrap();
        let r = traverse(&g, &p);
        assert!(r.by_depth[&0].is_empty());
    }

    #[test]
    fn missing_source_vertices_are_skipped() {
        let g = audit_graph();
        let p = GTravel::v([1u64, 999u64]).e("run").compile().unwrap();
        let r = traverse(&g, &p);
        assert_eq!(r.all_vertices(), vec![VertexId(2), VertexId(5)]);
    }

    #[test]
    fn multiple_rtn_depths_union() {
        let g = audit_graph();
        let p = GTravel::v([1u64])
            .rtn()
            .e("run")
            .rtn()
            .e("read")
            .compile()
            .unwrap();
        let r = traverse(&g, &p);
        assert_eq!(r.by_depth[&0], [VertexId(1)].into());
        assert_eq!(r.by_depth[&1], [VertexId(2), VertexId(5)].into());
        assert!(!r.by_depth.contains_key(&2));
    }
}
