//! Property test: on random graphs and random GTravel plans, all three
//! distributed engines return exactly the oracle's result — the central
//! correctness property of the reproduction (asynchrony, caching, merging
//! and rtn() routing must never change traversal semantics).

use graphtrek::oracle;
use graphtrek::prelude::*;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

#[derive(Debug, Clone)]
struct GraphSpec {
    n_vertices: u64,
    edges: Vec<(u64, u8, u64, i64)>, // (src, label idx, dst, ts)
    weights: Vec<i64>,
}

const LABELS: [&str; 3] = ["a", "b", "c"];
const TYPES: [&str; 3] = ["User", "Execution", "File"];

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (4u64..24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0u8..3, 0..n, 0i64..20), 0..(n as usize * 4));
        let weights = proptest::collection::vec(0i64..10, n as usize);
        (Just(n), edges, weights).prop_map(|(n_vertices, edges, weights)| GraphSpec {
            n_vertices,
            edges,
            weights,
        })
    })
}

#[derive(Debug, Clone)]
struct StepSpec {
    label: u8,
    ts_filter: Option<(i64, i64)>,
    w_filter: Option<(i64, i64)>,
    rtn: bool,
}

#[derive(Debug, Clone)]
struct PlanSpec {
    sources: Vec<u64>,
    all_source: bool,
    type_filter: Option<u8>,
    source_rtn: bool,
    steps: Vec<StepSpec>,
}

fn step_spec() -> impl Strategy<Value = StepSpec> {
    (
        0u8..3,
        proptest::option::of((0i64..20, 0i64..20)),
        proptest::option::weighted(0.3, (0i64..10, 0i64..10)),
        proptest::bool::weighted(0.3),
    )
        .prop_map(|(label, ts, w, rtn)| StepSpec {
            label,
            ts_filter: ts.map(|(a, b)| (a.min(b), a.max(b))),
            w_filter: w.map(|(a, b)| (a.min(b), a.max(b))),
            rtn,
        })
}

fn plan_spec() -> impl Strategy<Value = PlanSpec> {
    (
        proptest::collection::vec(0u64..24, 1..5),
        proptest::bool::weighted(0.3),
        proptest::option::weighted(0.4, 0u8..3),
        proptest::bool::weighted(0.25),
        proptest::collection::vec(step_spec(), 0..5),
    )
        .prop_map(
            |(sources, all_source, type_filter, source_rtn, steps)| PlanSpec {
                sources,
                all_source,
                type_filter,
                source_rtn,
                steps,
            },
        )
}

fn build_graph(spec: &GraphSpec) -> InMemoryGraph {
    let mut g = InMemoryGraph::new();
    for i in 0..spec.n_vertices {
        g.add_vertex(Vertex::new(
            i,
            TYPES[(i % 3) as usize],
            Props::new().with("w", spec.weights[i as usize]),
        ));
    }
    let mut seen = std::collections::HashSet::new();
    for &(src, l, dst, ts) in &spec.edges {
        let src = src % spec.n_vertices;
        let dst = dst % spec.n_vertices;
        if !seen.insert((src, l, dst)) {
            continue; // storage collapses duplicate (src,label,dst) keys
        }
        g.add_edge(Edge::new(
            src,
            LABELS[l as usize],
            dst,
            Props::new().with("ts", ts),
        ));
    }
    g
}

fn build_query(spec: &PlanSpec, n_vertices: u64) -> GTravel {
    let mut q = if spec.all_source {
        GTravel::v_all()
    } else {
        GTravel::v(
            spec.sources
                .iter()
                .map(|&s| s % n_vertices)
                .collect::<Vec<_>>(),
        )
    };
    if let Some(t) = spec.type_filter {
        q = q.va(PropFilter::eq("type", TYPES[t as usize]));
    }
    if spec.source_rtn {
        q = q.rtn();
    }
    for s in &spec.steps {
        q = q.e(LABELS[s.label as usize]);
        if let Some((lo, hi)) = s.ts_filter {
            q = q.ea(PropFilter::range("ts", lo, hi));
        }
        if let Some((lo, hi)) = s.w_filter {
            q = q.va(PropFilter::range("w", lo, hi));
        }
        if s.rtn {
            q = q.rtn();
        }
    }
    q
}

/// Strategy for seeded chaos plans: bounded fault rates plus at most two
/// scripted crash points on a two-server cluster. Shrinking walks every
/// component toward zero, so a failure is reported with a minimal fault
/// schedule (fewest crashes, smallest rates, smallest trigger counts).
fn chaos_spec() -> impl Strategy<Value = ChaosPlan> {
    (
        any::<u64>(),
        0.0f64..0.10,
        0.0f64..0.10,
        0.0f64..0.25,
        any::<bool>(),
        proptest::collection::vec((0usize..2, 0u16..3, 1u64..8, any::<bool>()), 0..3),
    )
        .prop_map(
            |(seed, drop, duplicate, delay, reorder, crashes)| ChaosPlan {
                seed,
                drop,
                duplicate,
                delay,
                max_delay: Duration::from_millis(1),
                reorder,
                crashes: crashes
                    .into_iter()
                    .map(|(server, step, after_messages, on_coord)| {
                        // Half the lane triggers on coordinator
                        // bookkeeping traffic, so random schedules also
                        // kill travels' coordinators mid-flight.
                        if on_coord {
                            CrashPoint::coordinator(server, after_messages)
                        } else {
                            CrashPoint::frontier(server, step, after_messages)
                        }
                    })
                    .collect(),
            },
        )
}

/// Run `q` to completion while a watchdog thread restarts any server a
/// scripted crash point takes down (retrying the travel after timeouts).
fn submit_with_watchdog(cluster: &Cluster, q: &GTravel) -> TravelResult {
    // Raise the stop flag even when the submit (or its unwrap) panics,
    // so the scope's implicit join terminates and the panic surfaces as
    // a shrinkable proptest failure instead of a hang.
    struct StopOnExit<'a>(&'a AtomicBool);
    impl Drop for StopOnExit<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let watcher = s.spawn(|| {
            while !stop.load(Ordering::SeqCst) {
                for id in 0..cluster.n_servers() {
                    if cluster.server_crashed(id) {
                        std::thread::sleep(Duration::from_millis(30));
                        if let Err(e) = cluster.restart_server(id) {
                            // A concurrent coordinator failover may have
                            // restarted the server already; only a server
                            // that is *still* down is a real failure.
                            assert!(!cluster.server_crashed(id), "restart failed: {e}");
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let stopper = StopOnExit(&stop);
        let out = cluster.submit_opts(q, Duration::from_secs(3), 6).unwrap();
        drop(stopper);
        watcher.join().unwrap();
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn engines_match_oracle(gspec in graph_spec(), pspec in plan_spec(), n_servers in 1usize..5) {
        let g = build_graph(&gspec);
        let q = build_query(&pspec, gspec.n_vertices);
        let plan = q.compile().unwrap();
        let want = oracle::traverse(&g, &plan);
        let want_map: BTreeMap<u16, Vec<VertexId>> = want
            .by_depth
            .iter()
            .map(|(&d, s)| (d, s.iter().copied().collect()))
            .collect();
        for kind in EngineKind::all() {
            let dir = std::env::temp_dir().join(format!(
                "gt-prop-{}-{kind:?}-{:?}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let cluster = Cluster::build(
                &g,
                ClusterConfig::new(&dir, n_servers),
                EngineConfig::new(kind),
            )
            .unwrap();
            let got = cluster.submit(&q).unwrap();
            cluster.shutdown();
            std::fs::remove_dir_all(&dir).ok();
            prop_assert_eq!(
                &got.by_depth,
                &want_map,
                "{:?} on {} servers diverged; plan = {:?}",
                kind,
                n_servers,
                plan
            );
        }
    }

    /// Two random plans executed concurrently on one cluster return
    /// exactly what they return when executed serially: interleaving
    /// (shared queues, shared cache, fair scheduling) never changes
    /// traversal semantics.
    #[test]
    fn interleaved_pair_matches_serial(
        gspec in graph_spec(),
        pa in plan_spec(),
        pb in plan_spec(),
        n_servers in 1usize..4,
    ) {
        let g = build_graph(&gspec);
        let qa = build_query(&pa, gspec.n_vertices);
        let qb = build_query(&pb, gspec.n_vertices);
        let dir = std::env::temp_dir().join(format!(
            "gt-prop-pair-{}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, n_servers),
            EngineConfig::new(EngineKind::GraphTrek),
        )
        .unwrap();
        // Serial runs first (the per-cluster oracle) …
        let serial_a = cluster.submit(&qa).unwrap().by_depth;
        let serial_b = cluster.submit(&qb).unwrap().by_depth;
        // … then both in flight at once, completions awaited out of order.
        let ta = cluster.start(&qa).unwrap();
        let tb = cluster.start(&qb).unwrap();
        let got_b = cluster.wait(&tb, std::time::Duration::from_secs(60)).unwrap();
        let got_a = cluster.wait(&ta, std::time::Duration::from_secs(60)).unwrap();
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(&got_a.by_depth, &serial_a, "plan A perturbed by co-runner");
        prop_assert_eq!(&got_b.by_depth, &serial_b, "plan B perturbed by co-runner");
    }

    /// Cancelling one of two in-flight travels never perturbs the
    /// survivor's result, and the cancelled ticket is fully retired (no
    /// admission-slot leak).
    #[test]
    fn cancellation_never_perturbs_co_runner(
        gspec in graph_spec(),
        pa in plan_spec(),
        pb in plan_spec(),
        n_servers in 1usize..4,
    ) {
        let g = build_graph(&gspec);
        let victim = build_query(&pa, gspec.n_vertices);
        let survivor = build_query(&pb, gspec.n_vertices);
        let want = oracle::traverse(&g, &survivor.compile().unwrap());
        let want_map: BTreeMap<u16, Vec<VertexId>> = want
            .by_depth
            .iter()
            .map(|(&d, s)| (d, s.iter().copied().collect()))
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "gt-prop-cancel-{}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, n_servers),
            EngineConfig::new(EngineKind::GraphTrek),
        )
        .unwrap();
        let tv = cluster.start(&victim).unwrap();
        let ts = cluster.start(&survivor).unwrap();
        cluster.cancel(&tv).unwrap();
        let got = cluster.wait(&ts, std::time::Duration::from_secs(60)).unwrap();
        let leaked = cluster.active_travels();
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(&got.by_depth, &want_map, "survivor perturbed by cancellation");
        prop_assert_eq!(leaked, 0, "cancelled travel leaked its admission slot");
    }
}

proptest! {
    // Fewer cases: every case runs three engines under fault injection
    // (crashed servers are restarted and the travel retried), which is
    // far slower than a clean run.
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Fault injection never changes traversal semantics: under any
    /// bounded chaos plan (message drop/duplication/delay/reordering plus
    /// up to two scripted crash–restart cycles), all three engines still
    /// return exactly the oracle's result. On failure proptest shrinks the
    /// graph, the plan and the chaos schedule to a minimal reproduction.
    #[test]
    fn engines_match_oracle_under_chaos(
        gspec in graph_spec(),
        pspec in plan_spec(),
        chaos in chaos_spec(),
    ) {
        let g = build_graph(&gspec);
        let q = build_query(&pspec, gspec.n_vertices);
        let plan = q.compile().unwrap();
        let want = oracle::traverse(&g, &plan);
        let want_map: BTreeMap<u16, Vec<VertexId>> = want
            .by_depth
            .iter()
            .map(|(&d, s)| (d, s.iter().copied().collect()))
            .collect();
        for kind in EngineKind::all() {
            let dir = std::env::temp_dir().join(format!(
                "gt-prop-chaos-{}-{kind:?}-{:?}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let cluster = Cluster::build(
                &g,
                ClusterConfig::new(&dir, 2),
                EngineConfig::new(kind).chaos(chaos.clone()),
            )
            .unwrap();
            let got = submit_with_watchdog(&cluster, &q);
            cluster.shutdown();
            std::fs::remove_dir_all(&dir).ok();
            prop_assert_eq!(
                &got.by_depth,
                &want_map,
                "{:?} diverged under chaos plan {:?}",
                kind,
                chaos
            );
        }
    }

    /// Live shard migrations injected while a travel is in flight never
    /// change traversal semantics: for any random schedule of partition
    /// moves the raced travel *and* a follow-up travel on the migrated
    /// layout both return exactly the oracle's result.
    #[test]
    fn migrations_mid_travel_never_change_semantics(
        gspec in graph_spec(),
        pspec in plan_spec(),
        schedule in proptest::collection::vec((0usize..64, 0usize..3), 1..4),
    ) {
        let g = build_graph(&gspec);
        let q = build_query(&pspec, gspec.n_vertices);
        let plan = q.compile().unwrap();
        let want = oracle::traverse(&g, &plan);
        let want_map: BTreeMap<u16, Vec<VertexId>> = want
            .by_depth
            .iter()
            .map(|(&d, s)| (d, s.iter().copied().collect()))
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "gt-prop-mig-{}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            EngineConfig::new(EngineKind::GraphTrek).force_reliable_delivery(true),
        )
        .unwrap();
        let ticket = cluster.start(&q).unwrap();
        for (psel, to) in schedule {
            let partition = psel % cluster.placement().n_partitions();
            cluster.migrate(partition, to).unwrap();
        }
        let raced = cluster.wait(&ticket, std::time::Duration::from_secs(60)).unwrap();
        let after = cluster.submit(&q).unwrap();
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(
            &raced.by_depth,
            &want_map,
            "travel raced by migrations diverged; plan = {:?}",
            plan
        );
        prop_assert_eq!(
            &after.by_depth,
            &want_map,
            "travel on migrated layout diverged; plan = {:?}",
            plan
        );
    }
}
