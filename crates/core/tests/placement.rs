//! Placement, replication & live shard migration suite (gt-placement).
//!
//! The versioned placement map replaces the implicit `hash % n` routing:
//! every partition has a primary plus `rf - 1` replicas, graph mutations
//! and travel-ledger events fan out synchronously to the replica set, and
//! partitions move between live servers via snapshot + delta + epoch-
//! bumped cutover — all while traversals are in flight.

use graphtrek::oracle;
use graphtrek::prelude::*;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-placement-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Random layered metadata-ish graph (same shape as the chaos suite).
fn random_graph(seed: u64, n: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = InMemoryGraph::new();
    let types = ["User", "Execution", "File"];
    let labels = ["run", "read", "write", "link"];
    for i in 0..n {
        let t = types[rng.gen_range(0..types.len())];
        g.add_vertex(Vertex::new(
            i,
            t,
            Props::new().with("w", rng.gen_range(0..10) as i64),
        ));
    }
    for _ in 0..n * 4 {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let label = labels[rng.gen_range(0..labels.len())];
        g.add_edge(Edge::new(
            src,
            label,
            dst,
            Props::new().with("ts", rng.gen_range(0..100) as i64),
        ));
    }
    g
}

fn placement_query() -> GTravel {
    GTravel::v([0u64, 1, 2, 3, 4, 5])
        .e("link")
        .rtn()
        .e("read")
        .va(PropFilter::range("w", 0i64, 8i64))
        .e("link")
        .e("link")
}

fn oracle_map(g: &InMemoryGraph, q: &GTravel) -> BTreeMap<u16, Vec<VertexId>> {
    oracle::traverse(g, &q.compile().unwrap())
        .by_depth
        .iter()
        .map(|(&d, s)| (d, s.iter().copied().collect()))
        .collect()
}

/// Slow every server's vertex accesses a little so a travel started just
/// before a placement change is still mid-flight when the change lands.
fn crawl(n_servers: usize) -> FaultPlan {
    FaultPlan {
        stragglers: (0..n_servers)
            .flat_map(|s| {
                [1u16, 2].map(|step| Straggler {
                    server: s,
                    step,
                    delay: Duration::from_millis(2),
                    count: 200,
                })
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Tentpole (a): replica promotion after a primary crash — all engines
// ---------------------------------------------------------------------

/// rf = 2: crash a non-coordinator primary mid-travel, wipe its store
/// directory (disk gone, machine gone), promote its replicas, and the
/// travel still returns exactly the oracle's result — with every acked
/// ingest readable afterwards. Zero data loss without the dead server's
/// disk is the whole point of synchronous replication.
#[test]
fn replica_promotion_after_primary_crash_on_all_engines() {
    let base = random_graph(11, 50);
    let mut g = random_graph(11, 50);
    // Freshly ingested data (mirrored into the oracle graph only): the
    // cluster is built from `base` and receives these rows through the
    // replicating ingest path, so the acked writes must be readable
    // after the primary holding them dies.
    let new_vertices: Vec<Vertex> = (1000u64..1006)
        .map(|i| Vertex::new(i, "File", Props::new().with("w", 3i64)))
        .collect();
    let new_edges = vec![
        Edge::new(0u64, "link", 1000u64, Props::new().with("ts", 5i64)),
        Edge::new(1000u64, "link", 1001u64, Props::new().with("ts", 6i64)),
    ];
    for v in &new_vertices {
        g.add_vertex(v.clone());
    }
    for e in &new_edges {
        g.add_edge(e.clone());
    }
    let q = placement_query();
    let want = oracle_map(&g, &q);
    for kind in EngineKind::all() {
        let dir = tmp(&format!("promote-{kind:?}"));
        let cluster = Cluster::build(
            &base,
            ClusterConfig::new(&dir, 3).replication(2),
            EngineConfig::new(kind)
                .force_reliable_delivery(true)
                .faults(crawl(3)),
        )
        .unwrap();
        let applied = cluster
            .ingest(new_vertices.clone(), new_edges.clone())
            .unwrap();
        assert!(applied > 0, "{kind:?}: ingest must be acked");
        let m = cluster.metrics();
        assert!(
            m.iter().map(|s| s.replica_writes).sum::<u64>() > 0,
            "{kind:?}: rf=2 ingest must fan out to replicas"
        );
        let ticket = cluster.start(&q).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let coord = (ticket.travel() as usize) % 3;
        let dead = (coord + 1) % 3;
        cluster.crash_server(dead).unwrap();
        // The disk is gone too: promotion must not depend on WAL replay.
        std::fs::remove_dir_all(dir.join(format!("server-{dead}"))).ok();
        let promoted = cluster.promote(dead).unwrap();
        assert!(
            !promoted.is_empty(),
            "{kind:?}: server {dead} primaried at least one partition"
        );
        let got = cluster
            .wait(&ticket, Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("{kind:?}: travel must survive promotion: {e}"));
        assert_eq!(got.by_depth, want, "{kind:?} diverged across promotion");
        // Zero data loss: every acked write (and all original data) is
        // still served — by the promoted replicas, not the wiped disk.
        for v in &new_vertices {
            let found = cluster.get_vertex(v.id).unwrap();
            assert!(
                found.is_some(),
                "{kind:?}: acked vertex {:?} lost with server {dead}",
                v.id
            );
        }
        let map = cluster.placement();
        assert!(
            map.primaried_by(dead).is_empty(),
            "{kind:?}: the dead server must primary nothing after promotion"
        );
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Tentpole (b): decommission drains a server mid-travel — all engines
// ---------------------------------------------------------------------

/// Drain a live non-coordinator server while a travel is in flight: its
/// partitions migrate away (snapshot + delta + cutover re-routing the
/// frontier), the travel completes with the oracle's result, and the
/// drained server ends up primarying nothing. Follow-up travels —
/// including ones whose id hashes onto the drained server — still work.
#[test]
fn decommission_drains_server_mid_travel_on_all_engines() {
    let g = random_graph(13, 60);
    let q = placement_query();
    let want = oracle_map(&g, &q);
    for kind in EngineKind::all() {
        let dir = tmp(&format!("drain-{kind:?}"));
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 4),
            EngineConfig::new(kind)
                .force_reliable_delivery(true)
                .faults(crawl(4)),
        )
        .unwrap();
        let ticket = cluster.start(&q).unwrap();
        let coord = (ticket.travel() as usize) % 4;
        let drained = (coord + 1) % 4;
        let moves = cluster.decommission(drained).unwrap();
        assert!(
            !moves.is_empty(),
            "{kind:?}: draining must migrate at least one partition"
        );
        let got = cluster
            .wait(&ticket, Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("{kind:?}: travel must survive the drain: {e}"));
        assert_eq!(got.by_depth, want, "{kind:?} diverged across the drain");
        let map = cluster.placement();
        assert!(map.is_decommissioned(drained), "{kind:?}: flagged");
        assert!(
            map.primaried_by(drained).is_empty(),
            "{kind:?}: a drained server must primary nothing"
        );
        let m = cluster.metrics();
        assert!(
            m.iter().map(|s| s.migrate_chunks_in).sum::<u64>() > 0,
            "{kind:?}: migration must have shipped chunks"
        );
        assert!(
            cluster.net_stats().bulk_messages() > 0,
            "{kind:?}: snapshot chunks ride the bulk traffic class"
        );
        // Travels keep landing correctly — including ids whose hash
        // coordinator would have been the drained server (the ring
        // advances past it).
        for _ in 0..4 {
            let r = cluster.submit(&q).unwrap();
            assert_eq!(r.by_depth, want, "{kind:?}: post-drain travel diverged");
        }
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Tentpole (c): coordinator + ledger-disk loss with rf ≥ 2
// ---------------------------------------------------------------------

/// DESIGN.md §8 used to call this unrecoverable: the coordinator dies
/// *and* its durable travel-ledger log is unreadable. With rf = 2 every
/// appended ledger blob was synchronously fanned to a peer's sidecar log,
/// so the failover replays the replica copy and the travel still finishes
/// with the oracle's result.
#[test]
fn coordinator_and_ledger_disk_loss_recovers_with_replication() {
    let g = random_graph(17, 50);
    let q = placement_query();
    let want = oracle_map(&g, &q);
    for kind in [EngineKind::AsyncPlain, EngineKind::GraphTrek] {
        let dir = tmp(&format!("ledger-loss-{kind:?}"));
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3).replication(2),
            EngineConfig::new(kind).force_reliable_delivery(true),
        )
        .unwrap();
        // Travel 1's coordinator is server 1; starving server 0 keeps the
        // travel in flight while ledger events accumulate and replicate.
        cluster.isolate_server(0, true);
        let ticket = cluster.start(&q).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        cluster.crash_server(1).unwrap();
        // Lose the ledger disk too — the previously unrecoverable case.
        std::fs::remove_file(dir.join("server-1").join("travel-ledger.log")).ok();
        cluster.isolate_server(0, false);
        let got = cluster
            .wait(&ticket, Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("{kind:?}: replica ledger must cover the loss: {e}"));
        assert_eq!(got.by_depth, want, "{kind:?} diverged after ledger loss");
        assert_eq!(got.failovers, 1, "{kind:?}: one failover");
        let m = cluster.metrics();
        assert!(
            m.iter().map(|s| s.ledger_blobs_replicated).sum::<u64>() > 0,
            "{kind:?}: ledger blobs must have been replicated before the crash"
        );
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Tentpole (d): dormancy — a static cluster pays nothing
// ---------------------------------------------------------------------

/// On a static single-replica cluster every placement/replication/
/// migration counter stays exactly zero, no bulk traffic moves, and the
/// rebalancer proposes no moves: the subsystem is free until used.
#[test]
fn static_cluster_keeps_every_placement_counter_at_zero() {
    let g = random_graph(29, 50);
    let q = placement_query();
    let want = oracle_map(&g, &q);
    let dir = tmp("dormant");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek).force_reliable_delivery(true),
    )
    .unwrap();
    assert_eq!(cluster.replication_factor(), 1);
    assert_eq!(cluster.durability(), DurabilityLevel::Durable);
    assert!(cluster.durability_warning().is_none());
    let got = cluster.submit(&q).unwrap();
    assert_eq!(got.by_depth, want);
    for (s, m) in cluster.metrics().into_iter().enumerate() {
        for (name, value) in m.placement_counters() {
            assert_eq!(value, 0, "server {s}: `{name}` moved on a static cluster");
        }
        for (name, value) in m.self_heal_counters() {
            assert_eq!(
                value, 0,
                "server {s}: `{name}` moved with detection disabled"
            );
        }
        for (name, value) in m.snapshot_counters() {
            assert_eq!(
                value, 0,
                "server {s}: `{name}` moved with versioning disabled"
            );
        }
    }
    assert_eq!(cluster.net_stats().bulk_messages(), 0);
    assert_eq!(cluster.net_stats().bulk_bytes(), 0);
    assert!(
        cluster.rebalance().unwrap().is_empty(),
        "a balanced cluster must propose no moves"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Clusters assembled over borrowed partitions (`from_partitions`) own no
/// storage: no WAL replay, no durable travel ledgers, no replication.
/// That used to be silent; now it is a typed level plus a warning string.
#[test]
fn from_partitions_clusters_carry_a_typed_durability_warning() {
    let g = random_graph(31, 30);
    let dir = tmp("ephemeral");
    // Materialize stores once, then rebuild a cluster over the loaded
    // partitions the way the benchmark harness does.
    {
        let seed = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 2),
            EngineConfig::new(EngineKind::GraphTrek),
        )
        .unwrap();
        seed.shutdown();
    }
    let mut partitions = Vec::new();
    for s in 0..2 {
        let store = std::sync::Arc::new(
            gt_kvstore::Store::open(gt_kvstore::StoreConfig::new(
                dir.join(format!("server-{s}")),
            ))
            .unwrap(),
        );
        partitions.push(std::sync::Arc::new(
            gt_graph::GraphPartition::open(store).unwrap(),
        ));
    }
    let cluster = Cluster::from_partitions(
        partitions,
        gt_graph::EdgeCutPartitioner::new(2),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    assert_eq!(cluster.durability(), DurabilityLevel::Ephemeral);
    let warning = cluster
        .durability_warning()
        .expect("ephemeral clusters must warn");
    assert!(
        warning.contains("replication"),
        "warning names what's missing"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Migration under chaos, and the cutover-races-failover lane
// ---------------------------------------------------------------------

/// A live migration injected mid-travel under lossy chaos still yields
/// the oracle's result on all three engines. The data plane is dropped,
/// duplicated and delayed; the migration control plane is raw and FIFO.
#[test]
fn migration_mid_travel_under_chaos_on_all_engines() {
    let g = random_graph(43, 50);
    let q = placement_query();
    let want = oracle_map(&g, &q);
    for kind in EngineKind::all() {
        let dir = tmp(&format!("mig-chaos-{kind:?}"));
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            EngineConfig::new(kind).chaos(ChaosPlan::lossy(43)),
        )
        .unwrap();
        let ticket = cluster.start(&q).unwrap();
        // Move a partition primaried by a non-coordinator while the
        // travel's frontier is live.
        let coord = (ticket.travel() as usize) % 3;
        let from = (coord + 1) % 3;
        let to = (coord + 2) % 3;
        let partition = *cluster
            .placement()
            .primaried_by(from)
            .first()
            .expect("every server primaries something initially");
        cluster.migrate(partition, to).unwrap();
        assert_eq!(cluster.placement().primary_of(partition), to);
        let got = cluster
            .wait(&ticket, Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("{kind:?}: travel must survive the migration: {e}"));
        assert_eq!(got.by_depth, want, "{kind:?} diverged across migration");
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The nasty lane: a migration cutover races a scripted coordinator
/// failover under seeded chaos — and the whole interleaving is
/// deterministic: same seed, same schedule ⇒ identical results, equal to
/// the oracle, on repeat runs.
#[test]
fn migration_cutover_racing_coordinator_failover_is_deterministic() {
    let run = |tag: &str| {
        let g = random_graph(4242, 50);
        let q = placement_query();
        let dir = tmp(tag);
        let plan = ChaosPlan {
            crashes: vec![CrashPoint::coordinator(1, 4)],
            ..ChaosPlan::lossy(4242)
        };
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            EngineConfig::new(EngineKind::GraphTrek).chaos(plan),
        )
        .unwrap();
        let ticket = cluster.start(&q).unwrap(); // travel 1: coordinator 1
                                                 // Migrate a partition off server 0 while the coordinator's crash
                                                 // point is arming: the cutover broadcast and the failover handoff
                                                 // interleave on every server.
        let partition = *cluster.placement().primaried_by(0).first().unwrap();
        cluster.migrate(partition, 2).unwrap();
        let got = cluster
            .wait(&ticket, Duration::from_secs(30))
            .expect("travel must survive cutover + failover");
        let m = cluster.metrics();
        let crashed = m[1].crashes;
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        (got.by_depth, got.failovers, crashed)
    };
    let want = oracle_map(&random_graph(4242, 50), &placement_query());
    let (a, fa, ca) = run("race-a");
    let (b, fb, cb) = run("race-b");
    assert_eq!(a, want, "raced run must still match the oracle");
    assert_eq!(a, b, "same seed must reproduce the same result");
    assert_eq!(fa, fb, "same seed must reproduce the same failover count");
    assert_eq!(ca, cb, "same seed must reproduce the same crash schedule");
}

// ---------------------------------------------------------------------
// Satellites: journal ceiling, stalled-failover deadline
// ---------------------------------------------------------------------

/// The per-travel sent-journal is bounded: balanced created/terminated
/// pairs compact away every `JOURNAL_COMPACT_EVERY` entries, so a long
/// travel's journal memory stays flat instead of growing with every
/// message — and a failover *after* compaction (re-announcing compacted
/// journals) still converges on the oracle via the sentinel re-drive.
#[test]
fn sent_journal_is_compacted_and_memory_bounded() {
    let g = random_graph(53, 600);
    // Journal entries grow with depth × servers (one exec per frontier
    // message per hop), so a very deep chain on the merge-free engine is
    // what drives a single travel's journal past the compaction budget.
    let mut q = GTravel::v((0u64..12).collect::<Vec<_>>());
    for _ in 0..12 {
        q = q.e("link").e("read").e("write");
    }
    let q = q.rtn();
    let want = oracle_map(&g, &q);
    let dir = tmp("journal-ceiling");
    let plan = ChaosPlan {
        crashes: vec![CrashPoint::coordinator(1, 120)],
        ..ChaosPlan::none()
    };
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::AsyncPlain).chaos(plan),
    )
    .unwrap();
    let got = cluster.submit(&q).unwrap();
    assert_eq!(got.by_depth, want, "compaction must never change results");
    let m = cluster.metrics();
    let compactions: u64 = m.iter().map(|s| s.journal_compactions).sum();
    let peak = m.iter().map(|s| s.journal_peak_entries).max().unwrap();
    assert!(
        compactions >= 1,
        "a {}-entry-peak travel must have compacted at least once",
        peak
    );
    assert!(
        peak <= 1024,
        "journal peak {peak} exceeds the compaction ceiling"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A successor that is unreachable (isolated) can never acknowledge the
/// handoff: the orchestration re-nudges for `RECOVER_DEADLINE`, then
/// surfaces a typed `FailoverStalled` instead of silently burning the
/// client's whole travel timeout.
#[test]
fn unacknowledged_handoff_surfaces_failover_stalled() {
    let g = random_graph(59, 40);
    let q = placement_query();
    let dir = tmp("stalled");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek).force_reliable_delivery(true),
    )
    .unwrap();
    // Travel 1: coordinator 1, successor-to-be 2. Isolating 2 both
    // stalls the travel and swallows the recover/handoff rounds.
    cluster.isolate_server(2, true);
    let ticket = cluster.start(&q).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    cluster.crash_server(1).unwrap();
    let started = std::time::Instant::now();
    let err = cluster.wait(&ticket, Duration::from_secs(30));
    assert!(
        matches!(
            err,
            Err(ClusterError::Travel(TravelError::FailoverStalled { travel }))
                if travel == ticket.travel()
        ),
        "expected FailoverStalled, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "the stall must surface at the recovery deadline, not the travel timeout"
    );
    assert_eq!(cluster.active_travels(), 0, "slot must be released");
    cluster.isolate_server(2, false);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
