//! The online metadata path: live updates and low-latency point queries
//! running against the same cluster that serves traversals — the full
//! trio of system requirements from the paper's §I.

use graphtrek::prelude::*;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-online-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn base_graph() -> InMemoryGraph {
    let mut g = InMemoryGraph::new();
    g.add_vertex(Vertex::new(1u64, "User", Props::new().with("name", "sam")));
    g.add_vertex(Vertex::new(10u64, "Execution", Props::new()));
    g.add_vertex(Vertex::new(
        20u64,
        "File",
        Props::new().with("ftype", "text"),
    ));
    g.add_edge(Edge::new(1u64, "run", 10u64, Props::new().with("ts", 5i64)));
    g.add_edge(Edge::new(10u64, "read", 20u64, Props::new()));
    g
}

#[test]
fn point_query_returns_live_metadata() {
    let dir = tmp("point");
    let cluster = Cluster::build(
        &base_graph(),
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let v = cluster.get_vertex(VertexId(1)).unwrap().expect("present");
    assert_eq!(v.vtype, "User");
    assert_eq!(v.props.get("name"), Some(&PropValue::str("sam")));
    assert!(cluster.get_vertex(VertexId(999)).unwrap().is_none());
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingested_entities_are_traversable_immediately() {
    let dir = tmp("ingest");
    let cluster = Cluster::build(
        &base_graph(),
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let q = GTravel::v([1u64]).e("run").e("read");
    let before = cluster.submit(&q).unwrap();
    assert_eq!(before.vertices, vec![VertexId(20)]);

    // A new execution with a new output file arrives "live".
    let applied = cluster
        .ingest(
            vec![
                Vertex::new(11u64, "Execution", Props::new()),
                Vertex::new(21u64, "File", Props::new().with("ftype", "h5")),
            ],
            vec![
                Edge::new(1u64, "run", 11u64, Props::new().with("ts", 9i64)),
                Edge::new(11u64, "read", 21u64, Props::new()),
            ],
        )
        .unwrap();
    assert_eq!(applied, 4);

    let after = cluster.submit(&q).unwrap();
    assert_eq!(after.vertices, vec![VertexId(20), VertexId(21)]);
    // The point query sees the new vertex too.
    assert!(cluster.get_vertex(VertexId(21)).unwrap().is_some());
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_overwrites_existing_attributes() {
    let dir = tmp("overwrite");
    let cluster = Cluster::build(
        &base_graph(),
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    cluster
        .ingest(
            vec![Vertex::new(
                20u64,
                "File",
                Props::new().with("ftype", "archived"),
            )],
            vec![],
        )
        .unwrap();
    let v = cluster.get_vertex(VertexId(20)).unwrap().unwrap();
    assert_eq!(v.props.get("ftype"), Some(&PropValue::str("archived")));
    // Traversal filters see the updated attribute.
    let q = GTravel::v([10u64])
        .e("read")
        .va(PropFilter::eq("ftype", "archived"));
    assert_eq!(cluster.submit(&q).unwrap().vertices, vec![VertexId(20)]);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingest_while_traversals_run() {
    // Live updates and traversals interleave from separate threads
    // without corrupting either path (the "online database" requirement).
    let mut g = InMemoryGraph::new();
    for i in 0..200u64 {
        g.add_vertex(Vertex::new(i, "N", Props::new()));
        g.add_edge(Edge::new(i, "x", (i + 1) % 200, Props::new()));
    }
    let dir = tmp("mixed");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 4),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let q = GTravel::v([0u64]).e("x").e("x").e("x");
    std::thread::scope(|s| {
        let c = &cluster;
        let t = s.spawn(move || {
            for _ in 0..10 {
                let r = c.submit(&q).unwrap();
                assert!(!r.vertices.is_empty());
            }
        });
        for i in 0..50u64 {
            let vid = 1000 + i;
            c.ingest(
                vec![Vertex::new(vid, "Extra", Props::new().with("i", i as i64))],
                vec![Edge::new(vid, "x", vid, Props::new())],
            )
            .unwrap();
        }
        t.join().unwrap();
    });
    // All 50 extras are queryable.
    for i in 0..50u64 {
        assert!(cluster.get_vertex(VertexId(1000 + i)).unwrap().is_some());
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ingested_data_survives_restart() {
    let dir = tmp("durable");
    {
        let cluster = Cluster::build(
            &base_graph(),
            ClusterConfig::new(&dir, 2),
            EngineConfig::new(EngineKind::GraphTrek),
        )
        .unwrap();
        cluster
            .ingest(
                vec![Vertex::new(77u64, "File", Props::new().with("ftype", "nc"))],
                vec![Edge::new(10u64, "write", 77u64, Props::new())],
            )
            .unwrap();
        cluster.shutdown();
    }
    // Rebuild servers over the same stores without reloading the graph.
    let partitioner = gt_graph::EdgeCutPartitioner::new(2);
    let mut partitions = Vec::new();
    for s in 0..2 {
        let store = std::sync::Arc::new(
            gt_kvstore::Store::open(gt_kvstore::StoreConfig::new(
                dir.join(format!("server-{s}")),
            ))
            .unwrap(),
        );
        partitions.push(std::sync::Arc::new(
            gt_graph::GraphPartition::open(store).unwrap(),
        ));
    }
    let cluster = graphtrek::Cluster::from_partitions(
        partitions,
        partitioner,
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    assert!(cluster.get_vertex(VertexId(77)).unwrap().is_some());
    let q = GTravel::v([10u64]).e("write");
    assert_eq!(cluster.submit(&q).unwrap().vertices, vec![VertexId(77)]);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
