//! Integration tests for the runtime mechanics beyond result correctness:
//! status tracing, silent-failure restart, straggler injection, the
//! Fig. 7 accounting identity, progress reporting, and concurrency.

use graphtrek::prelude::*;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-rt-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Chain graph a0 → a1 → … with heavy fan-out at each hop so traversals
/// generate real work.
fn fanout_graph(n_layers: u64, width: u64) -> InMemoryGraph {
    let mut g = InMemoryGraph::new();
    let mut rng = SmallRng::seed_from_u64(99);
    let id = |layer: u64, i: u64| layer * width + i;
    for layer in 0..n_layers {
        for i in 0..width {
            g.add_vertex(Vertex::new(
                id(layer, i),
                "N",
                Props::new().with("layer", layer as i64),
            ));
        }
    }
    for layer in 0..n_layers - 1 {
        for i in 0..width {
            // Each vertex links to several vertices of the next layer.
            for _ in 0..4 {
                let j = rng.gen_range(0..width);
                g.add_edge(Edge::new(
                    id(layer, i),
                    "next",
                    id(layer + 1, j),
                    Props::new(),
                ));
            }
        }
    }
    g
}

fn deep_query(steps: usize) -> GTravel {
    let mut q = GTravel::v((0..16u64).collect::<Vec<_>>());
    for _ in 0..steps {
        q = q.e("next");
    }
    q
}

#[test]
fn fig7_accounting_identity_holds() {
    // §VII-A: redundant + combined + real I/O = total vertex requests
    // received, on every server.
    let g = fanout_graph(9, 64);
    let dir = tmp("identity");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 4),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    cluster.submit(&deep_query(8)).unwrap();
    let mut total_received = 0;
    for (s, m) in cluster.metrics().into_iter().enumerate() {
        assert_eq!(
            m.total_vertex_requests(),
            m.requests_received,
            "identity violated on server {s}: {m:?}"
        );
        total_received += m.requests_received;
    }
    assert!(total_received > 0);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graphtrek_removes_redundant_visits() {
    // The fan-out graph guarantees duplicate (step, vertex) requests;
    // GraphTrek must detect them while plain async re-executes them.
    let g = fanout_graph(6, 32);
    let dir = tmp("redundant");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 4),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    cluster.submit(&deep_query(5)).unwrap();
    let redundant: u64 = cluster.metrics().iter().map(|m| m.redundant_visits).sum();
    let real: u64 = cluster.metrics().iter().map(|m| m.real_io_visits).sum();
    assert!(redundant > 0, "fan-out graph must produce redundant visits");
    assert!(real > 0);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    // Async-GT on the same workload: no traversal-affiliate cache, so
    // re-arrivals after an entry was processed re-execute as real I/O.
    // Queue coalescing still catches duplicates that arrive while queued
    // (Fig. 6 granularity), but no cross-step merging ever happens.
    let dir = tmp("redundant-async");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 4),
        EngineConfig::new(EngineKind::AsyncPlain),
    )
    .unwrap();
    cluster.submit(&deep_query(5)).unwrap();
    let m: Vec<_> = cluster.metrics();
    assert_eq!(
        m.iter().map(|m| m.combined_visits).sum::<u64>(),
        0,
        "cross-step merging is a GraphTrek-only optimization"
    );
    let async_real: u64 = m.iter().map(|m| m.real_io_visits).sum();
    assert!(
        async_real >= real,
        "plain async must do at least as much real I/O ({async_real}) as GraphTrek ({real})"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn straggler_injection_charges_delays() {
    let g = fanout_graph(5, 32);
    let dir = tmp("straggler");
    let faults = FaultPlan::round_robin_stragglers(&[0, 1], 4, Duration::from_micros(200), 50);
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek).faults(faults),
    )
    .unwrap();
    let r = cluster.submit(&deep_query(4)).unwrap();
    assert!(!r.vertices.is_empty());
    let injected: u64 = cluster.metrics().iter().map(|m| m.injected_delays).sum();
    assert!(injected > 0, "stragglers must have fired");
    // Only the configured servers were affected.
    let m = cluster.metrics();
    assert_eq!(m[2].injected_delays, 0);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn silent_failure_times_out_and_restart_recovers() {
    let g = fanout_graph(4, 16);
    let dir = tmp("failure");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    // Expected result while healthy.
    let want = cluster.submit(&deep_query(3)).unwrap();

    // Isolate a backend server: its traffic is dropped silently, so the
    // traversal cannot complete (§IV-C's silent-failure scenario).
    cluster.isolate_server(1, true);
    let err = cluster.submit_opts(&deep_query(3), Duration::from_millis(400), 0);
    assert!(
        matches!(
            err,
            Err(graphtrek::cluster::ClusterError::Travel(
                graphtrek::cluster::TravelError::Timeout { .. }
            ))
        ),
        "isolated server must cause a timeout, got {err:?}"
    );

    // Reconnect while a restarting submission is in flight: the paper's
    // v1 recovery ("this failure will simply cause the traversal to be
    // restarted") must then succeed.
    let healer = std::thread::spawn({
        // Reconnect after the first attempt has surely timed out.
        let isolate_for = Duration::from_millis(600);
        move || std::thread::sleep(isolate_for)
    });
    let recovered = std::thread::scope(|s| {
        let h = s.spawn(|| cluster.submit_opts(&deep_query(3), Duration::from_millis(500), 5));
        std::thread::sleep(Duration::from_millis(600));
        cluster.isolate_server(1, false);
        h.join().unwrap()
    });
    healer.join().unwrap();
    let recovered = recovered.expect("restart after reconnect must succeed");
    assert!(recovered.restarts >= 1, "must have restarted at least once");
    assert_eq!(recovered.by_depth, want.by_depth);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn progress_reporting_tracks_execution_counts() {
    let g = fanout_graph(6, 32);
    let dir = tmp("progress");
    // Slow the traversal down so progress can be observed mid-flight.
    let faults = FaultPlan {
        stragglers: (1..5)
            .map(|step| graphtrek::faults::Straggler {
                server: 0,
                step,
                delay: Duration::from_millis(2),
                count: 100,
            })
            .collect(),
    };
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek).faults(faults),
    )
    .unwrap();
    let q = deep_query(5);
    let ticket = cluster.start(&q).unwrap();
    // Poll progress while the traversal runs.
    let mut saw_outstanding = false;
    for _ in 0..50 {
        let p = cluster.progress(&ticket).unwrap();
        if p.outstanding() > 0 {
            saw_outstanding = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let result = cluster.wait(&ticket, Duration::from_secs(30)).unwrap();
    assert!(saw_outstanding, "never observed outstanding executions");
    // At completion, tracing is balanced.
    assert_eq!(result.progress.created, result.progress.terminated);
    assert!(result.progress.created > 0);
    assert!(result.progress.outstanding_by_depth.is_empty());
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_travels_from_multiple_threads() {
    let g = fanout_graph(6, 32);
    let dir = tmp("concurrent");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 4),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let want = cluster.submit(&deep_query(4)).unwrap();
    let results: Vec<_> = std::thread::scope(|s| {
        (0..6)
            .map(|_| s.spawn(|| cluster.submit(&deep_query(4)).unwrap()))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for r in results {
        assert_eq!(r.by_depth, want.by_depth);
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sync_engine_counts_barriers() {
    let g = fanout_graph(5, 16);
    let dir = tmp("barriers");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::Sync),
    )
    .unwrap();
    let r = cluster.submit(&deep_query(4)).unwrap();
    // Sync progress reports barrier counts: one per step (including the
    // source step), since every step reaches the controller.
    assert!(
        r.progress.created >= 4,
        "expected >=4 barriers, got {:?}",
        r.progress
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn queue_peak_grows_under_load() {
    let g = fanout_graph(8, 64);
    let dir = tmp("queuepeak");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek).workers(1),
    )
    .unwrap();
    cluster.submit(&deep_query(7)).unwrap();
    let peak: usize = cluster
        .metrics()
        .iter()
        .map(|m| m.queue_peak)
        .max()
        .unwrap();
    assert!(peak > 1, "expected queue buildup, peak={peak}");
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reset_metrics_between_runs() {
    let g = fanout_graph(4, 16);
    let dir = tmp("reset");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    cluster.submit(&deep_query(3)).unwrap();
    assert!(cluster.metrics().iter().any(|m| m.requests_received > 0));
    cluster.reset_metrics();
    assert!(cluster.metrics().iter().all(|m| m.requests_received == 0));
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn net_stats_show_server_to_server_flow() {
    let g = fanout_graph(4, 32);
    let dir = tmp("netstats");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    cluster.submit(&deep_query(3)).unwrap();
    let stats = cluster.net_stats();
    // Server↔server traffic must dominate; the client exchanged only the
    // submit + done pair per travel.
    let client_id = 3;
    let mut server_to_server = 0;
    for from in 0..3 {
        for to in 0..3 {
            server_to_server += stats.messages(from, to);
        }
    }
    let client_traffic: u64 = (0..4)
        .map(|s| stats.messages(client_id, s) + stats.messages(s, client_id))
        .sum();
    assert!(server_to_server > client_traffic);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn darshan_audit_query_runs_on_all_engines() {
    // The Table III audit query shape on the synthetic Darshan graph.
    let d = gt_darshan::generate(&gt_darshan::DarshanConfig {
        n_jobs: 60,
        n_files: 200,
        ..gt_darshan::DarshanConfig::small()
    });
    let user = d.layout.user(3);
    let q = GTravel::v([user])
        .e("run")
        .ea(PropFilter::range("ts", 0i64, i64::MAX / 2))
        .e("hasExecutions")
        .e("write")
        .e("readBy")
        .e("write")
        .rtn();
    let want = graphtrek::oracle::traverse(&d.graph, &q.compile().unwrap());
    for kind in EngineKind::all() {
        let dir = tmp(&format!("darshan-{kind:?}"));
        let cluster = Cluster::build(
            &d.graph,
            ClusterConfig::new(&dir, 4),
            EngineConfig::new(kind),
        )
        .unwrap();
        let got = cluster.submit(&q).unwrap();
        let want_v = want.all_vertices();
        assert_eq!(got.vertices, want_v, "{kind:?} diverged on audit query");
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
