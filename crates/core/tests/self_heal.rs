//! Self-healing placement suite: phi-accrual failure detection over the
//! fabric, epoch-fenced automatic promotion, background re-replication,
//! and replica reads — proven by chaos convergence.
//!
//! The contract under test: with `ClusterConfig::self_healing()`, a
//! cluster hit by a randomized crash schedule converges back to full
//! replication factor with **zero client intervention** (no
//! `promote`, no `restart_server` from the test), every travel raced by
//! a crash still lands on the oracle's result, and every acked ingest
//! stays readable. With detection off, the whole subsystem is free:
//! every `self_heal_counters()` entry is exactly zero.

use graphtrek::oracle;
use graphtrek::prelude::*;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-selfheal-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Random layered metadata-ish graph (same shape as the chaos suite).
fn random_graph(seed: u64, n: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = InMemoryGraph::new();
    let types = ["User", "Execution", "File"];
    let labels = ["run", "read", "write", "link"];
    for i in 0..n {
        let t = types[rng.gen_range(0..types.len())];
        g.add_vertex(Vertex::new(
            i,
            t,
            Props::new().with("w", rng.gen_range(0..10) as i64),
        ));
    }
    for _ in 0..n * 4 {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let label = labels[rng.gen_range(0..labels.len())];
        g.add_edge(Edge::new(
            src,
            label,
            dst,
            Props::new().with("ts", rng.gen_range(0..100) as i64),
        ));
    }
    g
}

fn heal_query() -> GTravel {
    GTravel::v([0u64, 1, 2, 3, 4, 5])
        .e("link")
        .rtn()
        .e("read")
        .va(PropFilter::range("w", 0i64, 8i64))
        .e("link")
        .e("link")
}

fn oracle_map(g: &InMemoryGraph, q: &GTravel) -> BTreeMap<u16, Vec<VertexId>> {
    oracle::traverse(g, &q.compile().unwrap())
        .by_depth
        .iter()
        .map(|(&d, s)| (d, s.iter().copied().collect()))
        .collect()
}

/// Rows that enter through the replicating ingest path (mirrored into the
/// oracle graph only) — the acked-data-survives-every-crash probe.
fn fresh_rows() -> (Vec<Vertex>, Vec<Edge>) {
    let vertices = (1000u64..1006)
        .map(|i| Vertex::new(i, "File", Props::new().with("w", 3i64)))
        .collect();
    let edges = vec![
        Edge::new(0u64, "link", 1000u64, Props::new().with("ts", 5i64)),
        Edge::new(1000u64, "link", 1001u64, Props::new().with("ts", 6i64)),
    ];
    (vertices, edges)
}

// ---------------------------------------------------------------------
// Tentpole: chaos convergence — randomized crash schedules, all engines
// ---------------------------------------------------------------------

/// One convergence episode, fully derived from `seed`: build a
/// self-healing rf = 2 cluster, ingest fresh rows, then run a randomized
/// schedule of crashes (victim, timing, and round count all seeded) with
/// a travel in flight across each one. The cluster must converge back to
/// full replication on its own, the raced travels and a post-heal travel
/// must equal the oracle, and every acked row must survive — without the
/// test ever calling `promote` or `restart_server`.
fn run_convergence(seed: u64, kind: EngineKind) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e1f_4ea1);
    let base = random_graph(seed, 40);
    let mut g = random_graph(seed, 40);
    let (new_vertices, new_edges) = fresh_rows();
    for v in &new_vertices {
        g.add_vertex(v.clone());
    }
    for e in &new_edges {
        g.add_edge(e.clone());
    }
    let q = heal_query();
    let want = oracle_map(&g, &q);
    let dir = tmp(&format!("converge-{kind:?}-{seed}"));
    let cluster = Cluster::build(
        &base,
        ClusterConfig::new(&dir, 3).replication(2).self_healing(),
        EngineConfig::new(kind).force_reliable_delivery(true),
    )
    .unwrap();
    cluster
        .ingest(new_vertices.clone(), new_edges.clone())
        .unwrap();
    let rounds = 1 + (seed % 2) as usize;
    for round in 0..rounds {
        let victim = rng.gen_range(0..3usize);
        let ticket = cluster.start(&q).unwrap();
        std::thread::sleep(Duration::from_millis(rng.gen_range(0..20)));
        cluster.crash_server(victim).unwrap();
        assert!(
            cluster.await_self_heal(Duration::from_secs(30)),
            "seed {seed} {kind:?} round {round}: no convergence after crashing {victim}"
        );
        // The raced travel still lands on the oracle: the healer redrives
        // frontiers lost with the dead shard, and `wait` drives failover
        // when the victim was the coordinator itself.
        let got = cluster
            .wait(&ticket, Duration::from_secs(30))
            .unwrap_or_else(|e| {
                panic!("seed {seed} {kind:?} round {round}: raced travel failed: {e}")
            });
        assert_eq!(
            got.by_depth, want,
            "seed {seed} {kind:?} round {round}: raced travel diverged"
        );
        // Zero data loss: every acked row is still served.
        for v in &new_vertices {
            assert!(
                cluster.get_vertex(v.id).unwrap().is_some(),
                "seed {seed} {kind:?} round {round}: acked vertex {:?} lost",
                v.id
            );
        }
    }
    // Post-heal layout serves travels correctly.
    let after = cluster.submit(&q).unwrap();
    assert_eq!(
        after.by_depth, want,
        "seed {seed} {kind:?}: post-heal travel diverged"
    );
    // The heal actually ran through the autonomous machinery.
    let m = cluster.metrics();
    let sum = |f: fn(&graphtrek::metrics::MetricsSnapshot) -> u64| m.iter().map(f).sum::<u64>();
    assert!(
        sum(|s| s.suspicions_raised) > 0,
        "seed {seed} {kind:?}: detectors never suspected the dead server"
    );
    assert!(
        sum(|s| s.auto_promotions) > 0,
        "seed {seed} {kind:?}: no automatic promotion happened"
    );
    assert!(
        sum(|s| s.rereplications) > 0,
        "seed {seed} {kind:?}: replication factor cannot be back without re-replication"
    );
    assert!(
        cluster
            .placement()
            .under_replicated(cluster.replication_factor())
            .is_empty(),
        "seed {seed} {kind:?}: partitions still under-replicated"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Fixed-seed CI lane: 3 seeds × 3 engines = 9 convergence episodes.
#[test]
fn chaos_crash_schedules_converge_on_all_engines() {
    for kind in EngineKind::all() {
        for seed in [11u64, 12, 13] {
            run_convergence(seed, kind);
        }
    }
}

/// Nightly randomized sweep: `GT_CHAOS_SEED` picks the base seed (the CI
/// job sets it from the run id). A failure panics with the exact seed in
/// the message, so the fixed-seed lane can be extended to cover it.
#[test]
#[ignore = "nightly randomized sweep — set GT_CHAOS_SEED and run with --ignored"]
fn chaos_seed_sweep_nightly() {
    let base: u64 = std::env::var("GT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    for i in 0..8u64 {
        let seed = base.wrapping_add(i);
        eprintln!("GT_CHAOS_SEED sweep: seed {seed}");
        run_convergence(seed, EngineKind::GraphTrek);
    }
}

// ---------------------------------------------------------------------
// False positives: chaos-delayed heartbeats must not demote live servers
// ---------------------------------------------------------------------

/// A delay-only chaos plan jitters heartbeats right up against the
/// suspicion boundary (gaps of several beats, below the hard silence
/// floor) while travels keep the dispatchers busy. Suppression is
/// *tested, not assumed*: no live server loses a primary role, nothing
/// is auto-promoted, and `false_suspicions` is zero after the run.
#[test]
fn delayed_heartbeats_never_demote_live_servers() {
    let g = random_graph(23, 50);
    let q = heal_query();
    let want = oracle_map(&g, &q);
    let dir = tmp("false-positive");
    let chaos = ChaosPlan {
        seed: 23,
        drop: 0.0,
        duplicate: 0.0,
        delay: 0.5,
        max_delay: Duration::from_millis(15),
        reorder: true,
        crashes: vec![],
    };
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3).replication(2).self_healing(),
        EngineConfig::new(EngineKind::GraphTrek)
            .chaos(chaos)
            .force_reliable_delivery(true),
    )
    .unwrap();
    let before = cluster.placement();
    // Keep the cluster under load long enough for thousands of
    // (jittered) heartbeats to cross the fabric.
    for _ in 0..6 {
        let got = cluster.submit(&q).unwrap();
        assert_eq!(got.by_depth, want, "travel diverged under delay chaos");
        std::thread::sleep(Duration::from_millis(30));
    }
    let after = cluster.placement();
    for p in 0..before.n_partitions() {
        assert_eq!(
            before.primary_of(p),
            after.primary_of(p),
            "partition {p}: a live server was demoted by a false suspicion"
        );
    }
    for s in 0..cluster.n_servers() {
        assert!(
            !cluster.server_crashed(s),
            "server {s} is down without a crash"
        );
    }
    let m = cluster.metrics();
    let heartbeats: u64 = m.iter().map(|s| s.heartbeats_recv).sum();
    assert!(
        heartbeats > 100,
        "detector barely exercised ({heartbeats} heartbeats received)"
    );
    assert_eq!(
        m.iter().map(|s| s.false_suspicions).sum::<u64>(),
        0,
        "a live server was falsely suspected under delay-only chaos"
    );
    assert_eq!(
        m.iter().map(|s| s.auto_promotions).sum::<u64>(),
        0,
        "the healer promoted with every server alive"
    );
    assert_eq!(
        m.iter().map(|s| s.rereplications).sum::<u64>(),
        0,
        "the healer re-replicated with nothing under-replicated"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Replica reads: routing, load spread, read-your-replication barrier
// ---------------------------------------------------------------------

/// With rf = 2 and replica reads on, point queries actually land on
/// replicas (the `replica_reads` counter moves) and every read returns
/// exactly what was acked — the barrier redirects a read that would
/// observe a replica lagging its primary.
#[test]
fn replica_point_reads_spread_load_and_stay_consistent() {
    let base = random_graph(37, 40);
    let (new_vertices, new_edges) = fresh_rows();
    let dir = tmp("replica-reads");
    let cluster = Cluster::build(
        &base,
        ClusterConfig::new(&dir, 3).replication(2),
        EngineConfig::new(EngineKind::GraphTrek)
            .force_reliable_delivery(true)
            .replica_reads(true),
    )
    .unwrap();
    cluster
        .ingest(new_vertices.clone(), new_edges.clone())
        .unwrap();
    for _ in 0..20 {
        for v in &new_vertices {
            let got = cluster.get_vertex(v.id).unwrap();
            assert_eq!(
                got.as_ref().map(|x| x.id),
                Some(v.id),
                "acked vertex {:?} invisible through a replica read",
                v.id
            );
        }
        for i in 0..40u64 {
            assert!(
                cluster.get_vertex(VertexId(i)).unwrap().is_some(),
                "base vertex {i} invisible through a replica read"
            );
        }
    }
    let m = cluster.metrics();
    assert!(
        m.iter().map(|s| s.replica_reads).sum::<u64>() > 0,
        "rf = 2 with replica reads on never served a read from a replica"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Dormancy: detection off + static cluster ⇒ the subsystem is free
// ---------------------------------------------------------------------

/// Without `self_healing()` the entire subsystem must be dormant: after
/// travels, replicated ingest and point reads, every `self_heal_counters()`
/// entry on every server is exactly zero — no heartbeat ever crossed the
/// fabric, nothing was suspected, promoted, re-replicated, or served from
/// a replica.
#[test]
fn detection_off_keeps_every_self_heal_counter_at_zero() {
    let base = random_graph(41, 50);
    let q = heal_query();
    let (new_vertices, new_edges) = fresh_rows();
    let dir = tmp("dormant-self-heal");
    let cluster = Cluster::build(
        &base,
        ClusterConfig::new(&dir, 3).replication(2),
        EngineConfig::new(EngineKind::GraphTrek).force_reliable_delivery(true),
    )
    .unwrap();
    cluster.ingest(new_vertices.clone(), new_edges).unwrap();
    cluster.submit(&q).unwrap();
    for v in &new_vertices {
        assert!(cluster.get_vertex(v.id).unwrap().is_some());
    }
    for (s, m) in cluster.metrics().into_iter().enumerate() {
        for (name, value) in m.self_heal_counters() {
            assert_eq!(
                value, 0,
                "server {s}: `{name}` moved with detection disabled"
            );
        }
        for (name, value) in m.snapshot_counters() {
            assert_eq!(
                value, 0,
                "server {s}: `{name}` moved with versioning disabled"
            );
        }
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Proptest lane: replica reads on == replica reads off == local oracle
// ---------------------------------------------------------------------

/// A random interleaving of ingest batches and point reads, executed on
/// two identical rf = 2 clusters — replica reads on vs off. Every read
/// must return the same visibility on both (the acked prefix is never
/// invisible through a replica), and a final travel must agree too.
#[derive(Debug, Clone)]
enum RwOp {
    /// Ingest a batch of `count` fresh vertices linked from vertex 0.
    Ingest { count: u8 },
    /// Point-read the `pick`-th previously ingested vertex (modulo how
    /// many exist; reads a base vertex when none do).
    Read { pick: u16 },
}

fn rw_ops() -> impl Strategy<Value = Vec<RwOp>> {
    proptest::collection::vec(
        prop_oneof![
            (1u8..4).prop_map(|count| RwOp::Ingest { count }),
            (0u16..64).prop_map(|pick| RwOp::Read { pick }),
        ],
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn replica_reads_match_plain_reads_under_interleaving(
        seed in 0u64..1024,
        ops in rw_ops(),
    ) {
        let base = random_graph(seed, 24);
        let q = heal_query();
        let mut clusters = Vec::new();
        for replica_reads in [false, true] {
            let dir = tmp(&format!("prop-rw-{replica_reads}"));
            let cluster = Cluster::build(
                &base,
                ClusterConfig::new(&dir, 3).replication(2),
                EngineConfig::new(EngineKind::GraphTrek)
                    .force_reliable_delivery(true)
                    .replica_reads(replica_reads),
            )
            .unwrap();
            clusters.push((cluster, dir));
        }
        let mut next_id = 1000u64;
        let mut created: Vec<u64> = Vec::new();
        for op in &ops {
            match op {
                RwOp::Ingest { count } => {
                    let vs: Vec<Vertex> = (0..*count as u64)
                        .map(|k| {
                            Vertex::new(next_id + k, "File", Props::new().with("w", 3i64))
                        })
                        .collect();
                    let es: Vec<Edge> = vs
                        .iter()
                        .map(|v| Edge::new(0u64, "link", v.id, Props::new().with("ts", 5i64)))
                        .collect();
                    for (cluster, _) in &clusters {
                        let applied = cluster.ingest(vs.clone(), es.clone()).unwrap();
                        prop_assert!(applied > 0);
                    }
                    created.extend(vs.iter().map(|v| v.id.0));
                    next_id += *count as u64;
                }
                RwOp::Read { pick } => {
                    let vid = if created.is_empty() {
                        VertexId(*pick as u64 % 24)
                    } else {
                        VertexId(created[*pick as usize % created.len()])
                    };
                    let off = clusters[0].0.get_vertex(vid).unwrap();
                    let on = clusters[1].0.get_vertex(vid).unwrap();
                    prop_assert_eq!(
                        off.as_ref().map(|v| v.id),
                        on.as_ref().map(|v| v.id),
                        "read of {:?} diverged between replica reads off and on",
                        vid
                    );
                    // Everything ever acked (and the whole base graph) is
                    // visible on both.
                    prop_assert!(on.is_some(), "acked/base vertex {:?} invisible", vid);
                }
            }
        }
        let off = clusters[0].0.submit(&q).unwrap();
        let on = clusters[1].0.submit(&q).unwrap();
        prop_assert_eq!(
            &off.by_depth,
            &on.by_depth,
            "travel diverged between replica reads off and on"
        );
        for (cluster, dir) in clusters {
            cluster.shutdown();
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
