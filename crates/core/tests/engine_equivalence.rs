//! Cross-engine integration tests: every engine must return exactly what
//! the single-threaded oracle says, on directed metadata-style graphs,
//! across server counts, plan shapes, and rtn() placements.

use graphtrek::oracle;
use graphtrek::prelude::*;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-eng-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Random layered metadata-ish graph with cycles and multi-label edges.
fn random_graph(seed: u64, n: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = InMemoryGraph::new();
    let types = ["User", "Execution", "File"];
    let labels = ["run", "read", "write", "link"];
    for i in 0..n {
        let t = types[rng.gen_range(0..types.len())];
        g.add_vertex(Vertex::new(
            i,
            t,
            Props::new()
                .with("w", rng.gen_range(0..10) as i64)
                .with("name", format!("v{i}")),
        ));
    }
    let n_edges = n * 4;
    for _ in 0..n_edges {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let label = labels[rng.gen_range(0..labels.len())];
        g.add_edge(Edge::new(
            src,
            label,
            dst,
            Props::new().with("ts", rng.gen_range(0..100) as i64),
        ));
    }
    g
}

fn run_all_engines(g: &InMemoryGraph, q: &GTravel, n_servers: usize, tag: &str) {
    let want = oracle::traverse(g, &q.compile().unwrap());
    let want_map: BTreeMap<u16, Vec<VertexId>> = want
        .by_depth
        .iter()
        .map(|(&d, s)| (d, s.iter().copied().collect()))
        .collect();
    for kind in EngineKind::all() {
        let dir = tmp(&format!("{tag}-{kind:?}-{n_servers}"));
        let cluster = Cluster::build(
            g,
            ClusterConfig::new(&dir, n_servers),
            EngineConfig::new(kind),
        )
        .unwrap();
        let got = cluster.submit(q).unwrap();
        assert_eq!(
            got.by_depth, want_map,
            "{kind:?} on {n_servers} servers diverged from oracle ({tag})"
        );
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn two_step_audit_equivalence() {
    let g = random_graph(1, 60);
    let q = GTravel::v([0u64, 1, 2, 3])
        .e("run")
        .ea(PropFilter::range("ts", 10i64, 80i64))
        .e("read");
    for n in [1, 2, 5] {
        run_all_engines(&g, &q, n, "audit");
    }
}

#[test]
fn deep_traversal_equivalence() {
    let g = random_graph(2, 50);
    let q = GTravel::v([0u64, 7, 13])
        .e("link")
        .e("link")
        .e("link")
        .e("link")
        .e("link")
        .e("link");
    for n in [2, 4] {
        run_all_engines(&g, &q, n, "deep");
    }
}

#[test]
fn typed_source_scan_equivalence() {
    let g = random_graph(3, 60);
    let q = GTravel::v_all()
        .va(PropFilter::eq("type", "Execution"))
        .e("read")
        .va(PropFilter::range("w", 2i64, 8i64));
    for n in [1, 3] {
        run_all_engines(&g, &q, n, "typed");
    }
}

#[test]
fn rtn_intermediate_equivalence() {
    let g = random_graph(4, 60);
    let q = GTravel::v([0u64, 1, 2, 3, 4, 5])
        .e("link")
        .rtn()
        .e("read")
        .va(PropFilter::range("w", 0i64, 5i64));
    for n in [1, 2, 5] {
        run_all_engines(&g, &q, n, "rtn-mid");
    }
}

#[test]
fn rtn_source_provenance_equivalence() {
    let g = random_graph(5, 50);
    let q = GTravel::v_all()
        .va(PropFilter::eq("type", "Execution"))
        .rtn()
        .e("read")
        .va(PropFilter::eq("type", "File"));
    for n in [2, 4] {
        run_all_engines(&g, &q, n, "rtn-src");
    }
}

#[test]
fn multiple_rtn_depths_equivalence() {
    let g = random_graph(6, 50);
    let q = GTravel::v([0u64, 1, 2, 3])
        .rtn()
        .e("link")
        .rtn()
        .e("link")
        .rtn();
    run_all_engines(&g, &q, 3, "rtn-multi");
}

#[test]
fn empty_result_equivalence() {
    let g = random_graph(7, 30);
    let q = GTravel::v([0u64]).e("no-such-label").e("read");
    run_all_engines(&g, &q, 3, "empty");
}

#[test]
fn zero_step_equivalence() {
    let g = random_graph(8, 40);
    let q = GTravel::v_all().va(PropFilter::eq("type", "File"));
    for n in [1, 4] {
        run_all_engines(&g, &q, n, "zerostep");
    }
}

#[test]
fn missing_sources_equivalence() {
    let g = random_graph(9, 30);
    let q = GTravel::v([5u64, 500, 900]).e("link");
    run_all_engines(&g, &q, 2, "missing");
}

#[test]
fn cyclic_revisit_equivalence() {
    // Dense tiny graph maximizes cross-step revisits.
    let g = random_graph(10, 8);
    let q = GTravel::v([0u64]).e("link").e("link").e("link").e("link");
    for n in [1, 2] {
        run_all_engines(&g, &q, n, "cycles");
    }
}

#[test]
fn results_identical_under_io_latency_and_network() {
    // Same equivalence with real latencies in play (exercises the async
    // races that zero-latency runs may hide).
    let g = random_graph(11, 40);
    let q = GTravel::v([0u64, 1, 2]).e("link").rtn().e("read");
    let want = oracle::traverse(&g, &q.compile().unwrap());
    for kind in EngineKind::all() {
        let dir = tmp(&format!("latency-{kind:?}"));
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 4).io(gt_kvstore::IoProfile::local_disk()),
            EngineConfig::new(kind).net(gt_net::NetConfig::cluster()),
        )
        .unwrap();
        let got = cluster.submit(&q).unwrap();
        let want_map: BTreeMap<u16, Vec<VertexId>> = want
            .by_depth
            .iter()
            .map(|(&d, s)| (d, s.iter().copied().collect()))
            .collect();
        assert_eq!(got.by_depth, want_map, "{kind:?} under latency");
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn repeated_submissions_are_stable() {
    let g = random_graph(12, 40);
    let q = GTravel::v([0u64, 1]).e("link").e("read");
    let dir = tmp("repeat");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let first = cluster.submit(&q).unwrap();
    for _ in 0..5 {
        let again = cluster.submit(&q).unwrap();
        assert_eq!(again.by_depth, first.by_depth);
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
