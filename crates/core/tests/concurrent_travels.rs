//! Concurrent multi-travel execution: several traversals in flight on
//! one cluster must each return exactly what they return when run alone
//! (the solo oracle), across all three engines and several server
//! counts; admission control must bound concurrency and preserve FIFO
//! order; cancellation must retire a travel cluster-wide without
//! perturbing co-runners; and fair cross-travel scheduling must get a
//! short travel out from behind a long scan faster than arrival-order
//! draining does.

use graphtrek::oracle;
use graphtrek::prelude::*;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-conc-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Random layered metadata-ish graph (fixed seed ⇒ fixed graph).
fn random_graph(seed: u64, n: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = InMemoryGraph::new();
    let types = ["User", "Execution", "File"];
    let labels = ["run", "read", "write", "link"];
    for i in 0..n {
        let t = types[rng.gen_range(0..types.len())];
        g.add_vertex(Vertex::new(
            i,
            t,
            Props::new()
                .with("w", rng.gen_range(0..10) as i64)
                .with("name", format!("v{i}")),
        ));
    }
    for _ in 0..n * 4 {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let label = labels[rng.gen_range(0..labels.len())];
        g.add_edge(Edge::new(
            src,
            label,
            dst,
            Props::new().with("ts", rng.gen_range(0..100) as i64),
        ));
    }
    g
}

/// Eight distinct fixed plans — different sources, depths, filters and
/// rtn() placements, so concurrent travels genuinely interleave
/// different workloads.
fn tenant_queries() -> Vec<GTravel> {
    vec![
        GTravel::v([0u64, 1, 2]).e("run").e("read"),
        GTravel::v([3u64, 4]).e("link").e("link").e("link"),
        GTravel::v_all()
            .va(PropFilter::eq("type", "Execution"))
            .e("read"),
        GTravel::v([5u64, 6, 7])
            .e("run")
            .rtn()
            .e("write")
            .va(PropFilter::range("w", 2i64, 8i64)),
        GTravel::v([8u64]).e("read").e("write").e("read").e("write"),
        GTravel::v([9u64, 10, 11, 12])
            .e("link")
            .ea(PropFilter::range("ts", 10i64, 80i64)),
        GTravel::v_all()
            .va(PropFilter::eq("type", "User"))
            .e("run")
            .e("read"),
        GTravel::v([13u64, 14]).rtn().e("write").e("link"),
    ]
}

fn oracle_map(g: &InMemoryGraph, q: &GTravel) -> BTreeMap<u16, Vec<VertexId>> {
    oracle::traverse(g, &q.compile().unwrap())
        .by_depth
        .iter()
        .map(|(&d, s)| (d, s.iter().copied().collect()))
        .collect()
}

/// Eight concurrent travels on every engine × {2, 4, 8} servers return
/// exactly the solo-run oracle results (the PR's headline acceptance
/// criterion).
#[test]
fn concurrent_travels_match_solo_oracle_all_engines() {
    let g = random_graph(11, 80);
    let queries = tenant_queries();
    let want: Vec<_> = queries.iter().map(|q| oracle_map(&g, q)).collect();
    for kind in EngineKind::all() {
        for n_servers in [2usize, 4, 8] {
            let dir = tmp(&format!("oracle-{kind:?}-{n_servers}"));
            let cluster = Cluster::build(
                &g,
                ClusterConfig::new(&dir, n_servers),
                EngineConfig::new(kind),
            )
            .unwrap();
            let tickets: Vec<Ticket> = queries.iter().map(|q| cluster.start(q).unwrap()).collect();
            // Wait in reverse start order, so completions for travels we
            // are not yet waiting on exercise the client's stash path.
            for (i, t) in tickets.iter().enumerate().rev() {
                let got = cluster.wait(t, Duration::from_secs(60)).unwrap();
                assert_eq!(
                    got.by_depth, want[i],
                    "{kind:?} on {n_servers} servers: travel {i} diverged from solo oracle"
                );
            }
            assert_eq!(cluster.active_travels(), 0, "ticket leak");
            assert_eq!(cluster.pending_travels(), 0, "admission-queue leak");
            cluster.shutdown();
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// `max_concurrent_travels` bounds in-flight travels; queued submissions
/// dispatch FIFO as slots free, and every travel still matches the
/// oracle. Time-to-admit is surfaced on the result.
#[test]
fn admission_control_bounds_concurrency_fifo() {
    let g = random_graph(12, 60);
    let queries = tenant_queries();
    let want: Vec<_> = queries.iter().map(|q| oracle_map(&g, q)).collect();
    let dir = tmp("admission");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek).max_concurrent_travels(2),
    )
    .unwrap();
    let tickets: Vec<Ticket> = queries[..6]
        .iter()
        .map(|q| cluster.start(q).unwrap())
        .collect();
    // Admission is client-side and synchronous: exactly the limit is in
    // flight, the rest are parked, before any completion is observed.
    assert_eq!(cluster.active_travels(), 2);
    assert_eq!(cluster.pending_travels(), 4);
    let mut results = Vec::new();
    for t in &tickets {
        results.push(cluster.wait(t, Duration::from_secs(60)).unwrap());
    }
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            r.by_depth, want[i],
            "travel {i} diverged under admission control"
        );
    }
    // The first two were admitted on submission; the last one had to
    // wait for a slot, and its queue time is visible on the result.
    assert_eq!(results[0].admit_wait, Duration::ZERO);
    assert_eq!(results[1].admit_wait, Duration::ZERO);
    assert!(
        results[5].admit_wait > Duration::ZERO,
        "queued travel must report a non-zero time-to-admit"
    );
    assert_eq!(cluster.active_travels(), 0);
    assert_eq!(cluster.pending_travels(), 0);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Cancelling a pending travel removes it before it ever starts
/// (`Ok(false)`); cancelling an admitted travel retires it on every
/// server (`Ok(true)`); and the cluster keeps serving travels correctly
/// afterwards.
#[test]
fn cancel_retires_pending_and_inflight_travels() {
    let g = random_graph(13, 60);
    let dir = tmp("cancel");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek).max_concurrent_travels(1),
    )
    .unwrap();
    let long = GTravel::v_all().e("link").e("link").e("link");
    let short = GTravel::v([0u64]).e("run");
    let a = cluster.start(&long).unwrap();
    let b = cluster.start(&short).unwrap();
    assert_eq!(cluster.pending_travels(), 1);
    // B never started: removed from the admission queue client-side.
    assert!(
        !cluster.cancel(&b).unwrap(),
        "pending travel: removed before start"
    );
    assert_eq!(cluster.pending_travels(), 0);
    // A was admitted: cancellation is acknowledged by every server.
    assert!(
        cluster.cancel(&a).unwrap(),
        "admitted travel: acked by all servers"
    );
    assert_eq!(cluster.active_travels(), 0);
    // The cluster is healthy: a fresh travel still matches the oracle.
    let want = oracle_map(&g, &short);
    let got = cluster.submit(&short).unwrap();
    assert_eq!(got.by_depth, want);
    // Cancelling an already-completed travel is a harmless no-op sweep.
    let c = cluster.start(&short).unwrap();
    cluster.wait(&c, Duration::from_secs(60)).unwrap();
    assert!(cluster.cancel(&c).unwrap());
    assert_eq!(cluster.active_travels(), 0);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Per-travel metric splits: each co-running travel sees its own real
/// I/O and queue-residency accounting, aggregated across servers.
#[test]
fn per_travel_metrics_are_attributed() {
    let g = random_graph(14, 60);
    let dir = tmp("metrics");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let qa = GTravel::v_all().e("link").e("link");
    let qb = GTravel::v([0u64, 1]).e("run");
    let a = cluster.start(&qa).unwrap();
    let b = cluster.start(&qb).unwrap();
    cluster.wait(&a, Duration::from_secs(60)).unwrap();
    cluster.wait(&b, Duration::from_secs(60)).unwrap();
    let ma = cluster.travel_metrics(&a);
    let mb = cluster.travel_metrics(&b);
    assert!(ma.real_io_visits > 0, "travel A did real I/O: {ma:?}");
    assert!(mb.real_io_visits > 0, "travel B did real I/O: {mb:?}");
    assert!(ma.queue_popped > 0 && mb.queue_popped > 0);
    // The wide scan does strictly more work than the 1-hop probe.
    assert!(ma.real_io_visits > mb.real_io_visits);
    let all = cluster.all_travel_metrics();
    assert!(all.contains_key(&a.travel()) && all.contains_key(&b.travel()));
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The PR's fairness acceptance test: a 1-hop travel submitted behind a
/// deep full-graph scan completes sooner under weighted fair
/// cross-travel scheduling than under arrival-order draining (the FIFO
/// queue), on the same graph, same plans, same injected slowness.
/// Fixed seeds; the measured pair is recorded in EXPERIMENTS.md.
///
/// The scan's deep steps (2+) are slowed with straggler injection, so a
/// backlog of slow requests builds on every server while the short
/// travel's own steps (0–1) stay fast — exactly the multi-tenant noisy-
/// neighbour shape. Arrival order drains the backlog first; the fair
/// pick serves the newcomer its share immediately.
#[test]
fn fair_scheduling_beats_arrival_order_for_short_travels() {
    let g = random_graph(15, 300);
    let long = GTravel::v_all().e("link").e("link").e("link");
    let short = GTravel::v([0u64]).e("run");
    let short_want = oracle_map(&g, &short);
    let slow_deep_steps = FaultPlan {
        stragglers: [0usize, 1]
            .iter()
            .flat_map(|&server| {
                [2u16, 3].iter().map(move |&step| Straggler {
                    server,
                    step,
                    delay: Duration::from_millis(1),
                    count: u64::MAX,
                })
            })
            .collect(),
    };
    let mut latency = BTreeMap::new();
    for (tag, fair) in [("fair", true), ("fifo", false)] {
        let dir = tmp(&format!("fairness-{tag}"));
        let ecfg = if fair {
            // Fair two-level merging queue (the default GraphTrek path).
            EngineConfig::new(EngineKind::GraphTrek).workers(1)
        } else {
            // Arrival-order baseline: same engine, FIFO local queues.
            EngineConfig::new(EngineKind::GraphTrek)
                .workers(1)
                .force_merging_queue(false)
        };
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 2),
            ecfg.faults(slow_deep_steps.clone()),
        )
        .unwrap();
        let bg = cluster.start(&long).unwrap();
        // Let the scan pile a backlog of slow deep-step requests onto
        // both servers' queues.
        std::thread::sleep(Duration::from_millis(60));
        let t = cluster.start(&short).unwrap();
        let got = cluster.wait(&t, Duration::from_secs(120)).unwrap();
        assert_eq!(got.by_depth, short_want, "{tag}: short travel diverged");
        latency.insert(tag, got.elapsed);
        // Retire the scan mid-flight (also exercises in-flight cancel
        // under load) so shutdown is clean and the test stays fast.
        assert!(cluster.cancel(&bg).unwrap());
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
    eprintln!(
        "short-travel latency behind a deep scan: fair={:?} fifo={:?}",
        latency["fair"], latency["fifo"]
    );
    assert!(
        latency["fair"] < latency["fifo"],
        "fair scheduling must beat arrival-order draining: {latency:?}"
    );
}

/// Stress lane (nightly): 32 travels with straggler injection and an
/// admission limit — no deadlock, no ticket leak, every result exact,
/// queue depth bounded.
#[test]
#[ignore = "stress lane: ~32 concurrent travels with straggler injection"]
fn stress_32_travels_with_stragglers() {
    let g = random_graph(16, 100);
    let queries = tenant_queries();
    let want: Vec<_> = queries.iter().map(|q| oracle_map(&g, q)).collect();
    let dir = tmp("stress");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 4),
        EngineConfig::new(EngineKind::GraphTrek)
            .max_concurrent_travels(8)
            .faults(FaultPlan::round_robin_stragglers(
                &[0, 1, 2, 3],
                3,
                Duration::from_millis(2),
                40,
            )),
    )
    .unwrap();
    let tickets: Vec<(usize, Ticket)> = (0..32)
        .map(|i| {
            let qi = i % queries.len();
            (qi, cluster.start(&queries[qi]).unwrap())
        })
        .collect();
    for (qi, t) in &tickets {
        let got = cluster.wait(t, Duration::from_secs(120)).unwrap();
        assert_eq!(
            got.by_depth, want[*qi],
            "stress travel (query {qi}) diverged"
        );
    }
    assert_eq!(cluster.active_travels(), 0, "ticket leak under stress");
    assert_eq!(cluster.pending_travels(), 0);
    for (s, m) in cluster.metrics().iter().enumerate() {
        assert!(
            m.queue_peak < 100_000,
            "server {s} queue depth unbounded: {}",
            m.queue_peak
        );
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
