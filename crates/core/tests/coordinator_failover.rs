//! Coordinator-failover suite: travels must survive the death of the
//! server hosting their status-tracing ledger (§IV-C).
//!
//! Every travel's ledger is event-sourced into the coordinator's durable
//! blob log. When the client's `wait()` observes the coordinator dead
//! (scripted [`CrashPoint::coordinator`] or explicit `crash_server`), it
//! re-homes the travel: the ledger stream is replayed on a successor
//! under a bumped travel-epoch, every server re-announces its journal,
//! and the traversal resumes — finishing with exactly the oracle's
//! result, under the same travel id, without a resubmission.

use graphtrek::oracle;
use graphtrek::prelude::*;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-failover-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Random layered metadata-ish graph (same shape as the chaos suite).
fn random_graph(seed: u64, n: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = InMemoryGraph::new();
    let types = ["User", "Execution", "File"];
    let labels = ["run", "read", "write", "link"];
    for i in 0..n {
        let t = types[rng.gen_range(0..types.len())];
        g.add_vertex(Vertex::new(
            i,
            t,
            Props::new().with("w", rng.gen_range(0..10) as i64),
        ));
    }
    for _ in 0..n * 4 {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let label = labels[rng.gen_range(0..labels.len())];
        g.add_edge(Edge::new(
            src,
            label,
            dst,
            Props::new().with("ts", rng.gen_range(0..100) as i64),
        ));
    }
    g
}

fn failover_query() -> GTravel {
    GTravel::v([0u64, 1, 2, 3, 4, 5])
        .e("link")
        .rtn()
        .e("read")
        .va(PropFilter::range("w", 0i64, 8i64))
        .e("link")
        .e("link")
}

fn oracle_map(g: &InMemoryGraph, q: &GTravel) -> BTreeMap<u16, Vec<VertexId>> {
    oracle::traverse(g, &q.compile().unwrap())
        .by_depth
        .iter()
        .map(|(&d, s)| (d, s.iter().copied().collect()))
        .collect()
}

// ---------------------------------------------------------------------
// Tentpole: crash the coordinator mid-travel, all three engines
// ---------------------------------------------------------------------

/// Travel ids start at 1 and the coordinator is `travel % n`, so on a
/// 3-server cluster the first travel is coordinated by server 1. Kill it
/// after it has absorbed a handful of status-tracing events: the client
/// must fail the travel over and still deliver the oracle's result —
/// same travel id, zero resubmissions.
#[test]
fn coordinator_crash_mid_travel_fails_over_on_all_engines() {
    let g = random_graph(11, 50);
    let q = failover_query();
    let want = oracle_map(&g, &q);
    for kind in EngineKind::all() {
        let dir = tmp(&format!("mid-{kind:?}"));
        let plan = ChaosPlan {
            crashes: vec![CrashPoint::coordinator(1, 4)],
            ..ChaosPlan::none()
        };
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            EngineConfig::new(kind).chaos(plan),
        )
        .unwrap();
        let ticket = cluster.start(&q).unwrap();
        let got = cluster
            .wait(&ticket, Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("{kind:?}: travel must survive the crash: {e}"));
        assert_eq!(got.by_depth, want, "{kind:?} diverged across failover");
        assert_eq!(got.failovers, 1, "{kind:?}: exactly one failover");
        let m = cluster.metrics();
        assert_eq!(m[1].crashes, 1, "{kind:?}: crash point must fire");
        // Successor of server 1 is server 2 (next live server).
        assert_eq!(m[2].failovers, 1, "{kind:?}: server 2 must take over");
        assert_eq!(m[2].ledger_replays, 1, "{kind:?}: ledger must be replayed");
        assert!(
            m.iter().map(|s| s.reannounce_msgs).sum::<u64>() >= 3,
            "{kind:?}: every server must re-announce"
        );
        assert_eq!(cluster.net_stats().handoffs(), 1);
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The asynchronous coordinator persists ledger events for every
/// created/terminated execution; crashing it late — while results are
/// being assembled — must still converge on the oracle's answer.
#[test]
fn coordinator_crash_during_result_assembly_recovers() {
    let g = random_graph(23, 50);
    let q = failover_query();
    let want = oracle_map(&g, &q);
    for kind in [EngineKind::AsyncPlain, EngineKind::GraphTrek] {
        let dir = tmp(&format!("late-{kind:?}"));
        // A large trigger count lands the crash deep into the travel,
        // when most executions have already terminated and result
        // batches are streaming into the ledger.
        let plan = ChaosPlan {
            crashes: vec![CrashPoint::coordinator(1, 60)],
            ..ChaosPlan::none()
        };
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            EngineConfig::new(kind).chaos(plan),
        )
        .unwrap();
        let ticket = cluster.start(&q).unwrap();
        let got = cluster
            .wait(&ticket, Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("{kind:?}: late crash must be survivable: {e}"));
        assert_eq!(got.by_depth, want, "{kind:?} diverged after late failover");
        let m = cluster.metrics();
        if m[1].crashes == 1 {
            assert_eq!(got.failovers, 1, "{kind:?}: one failover");
            assert!(
                m[2].ledger_events_replayed > 0,
                "{kind:?}: a late crash leaves a non-trivial stream to replay"
            );
        } else {
            // The travel finished before absorbing 60 coordinator
            // events; nothing to fail over — result must still be exact.
            assert_eq!(got.failovers, 0);
        }
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Two scripted coordinator crashes: the travel starts on server 1,
/// fails over to 2, whose crash point then fires as soon as it has
/// coordinated enough events — failing over again to server 0. Both
/// hops must be transparent.
#[test]
fn double_failover_survives_on_all_engines() {
    let g = random_graph(37, 50);
    let q = failover_query();
    let want = oracle_map(&g, &q);
    for kind in EngineKind::all() {
        let dir = tmp(&format!("double-{kind:?}"));
        let plan = ChaosPlan {
            crashes: vec![CrashPoint::coordinator(1, 4), CrashPoint::coordinator(2, 4)],
            ..ChaosPlan::none()
        };
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            EngineConfig::new(kind).chaos(plan),
        )
        .unwrap();
        let ticket = cluster.start(&q).unwrap();
        let got = cluster
            .wait(&ticket, Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("{kind:?}: double failover must succeed: {e}"));
        assert_eq!(got.by_depth, want, "{kind:?} diverged after two failovers");
        let m = cluster.metrics();
        assert_eq!(m[1].crashes, 1, "{kind:?}: first crash fires");
        if m[2].crashes == 1 {
            assert_eq!(got.failovers, 2, "{kind:?}: two failovers");
            assert_eq!(m[0].failovers, 1, "{kind:?}: server 0 hosts the second");
            assert_eq!(cluster.net_stats().handoffs(), 2);
        } else {
            // The re-driven travel finished before the successor
            // absorbed enough events to trip its own crash point.
            assert_eq!(got.failovers, 1, "{kind:?}: at least the first hop");
        }
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The whole failover pipeline is deterministic: same seed, same crash
/// script, same graph ⇒ byte-identical results on repeat runs.
#[test]
fn failover_is_deterministic_for_a_fixed_seed() {
    let run = |tag: &str| {
        let g = random_graph(4242, 50);
        let q = failover_query();
        let dir = tmp(tag);
        let plan = ChaosPlan {
            crashes: vec![CrashPoint::coordinator(1, 4)],
            ..ChaosPlan::lossy(4242)
        };
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            EngineConfig::new(EngineKind::GraphTrek).chaos(plan),
        )
        .unwrap();
        let ticket = cluster.start(&q).unwrap();
        let got = cluster.wait(&ticket, Duration::from_secs(30)).unwrap();
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        (got.by_depth, got.failovers)
    };
    let (a, fa) = run("det-a");
    let (b, fb) = run("det-b");
    assert_eq!(a, b, "same seed must reproduce the same result");
    assert_eq!(fa, fb, "same seed must reproduce the same failover count");
    assert_eq!(a, oracle_map(&random_graph(4242, 50), &failover_query()));
}

// ---------------------------------------------------------------------
// Typed errors
// ---------------------------------------------------------------------

/// A travel stalled by an unreachable *backend* (coordinator alive)
/// times out with a typed error carrying the coordinator's last progress
/// estimate — the timeout is no longer silent about where it got stuck.
#[test]
fn timeout_error_carries_last_progress() {
    let g = random_graph(7, 40);
    let q = failover_query();
    let dir = tmp("timeout-progress");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek).force_reliable_delivery(true),
    )
    .unwrap();
    // Travel 1's coordinator is server 1; cutting server 0 starves the
    // traversal of one shard without touching the coordinator.
    cluster.isolate_server(0, true);
    let ticket = cluster.start(&q).unwrap();
    let err = cluster.wait(&ticket, Duration::from_millis(400));
    match err {
        Err(ClusterError::Travel(TravelError::Timeout {
            attempts,
            last_progress,
        })) => {
            assert_eq!(attempts, 1);
            let p = last_progress.expect("coordinator was alive: progress must be attached");
            assert!(p.created > 0, "coordinator saw the travel start");
        }
        other => panic!("expected a typed timeout, got {other:?}"),
    }
    // The timeout released the admission slot (regression guard).
    assert_eq!(cluster.active_travels(), 0);
    cluster.isolate_server(0, false);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: the best-effort progress probe fired after `wait`'s
/// deadline used to open a fresh hard-coded 250 ms reply window even
/// when the caller's whole timeout was a few milliseconds, so a
/// `wait(40ms)` against an unresponsive coordinator returned after
/// ~290 ms. The probe's window is now capped by the caller's own
/// timeout.
#[test]
fn short_wait_timeout_is_not_overshot_by_the_progress_probe() {
    let g = random_graph(19, 30);
    let q = failover_query();
    let dir = tmp("probe-overshoot");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek).force_reliable_delivery(true),
    )
    .unwrap();
    // Travel 1's coordinator is server 1; isolating it swallows both the
    // travel and the post-deadline progress query.
    cluster.isolate_server(1, true);
    let ticket = cluster.start(&q).unwrap();
    let started = std::time::Instant::now();
    let err = cluster.wait(&ticket, Duration::from_millis(40));
    let elapsed = started.elapsed();
    assert!(
        matches!(err, Err(ClusterError::Travel(TravelError::Timeout { .. }))),
        "expected a typed timeout, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_millis(250),
        "wait(40ms) took {elapsed:?}: the probe window must be capped by the timeout"
    );
    cluster.isolate_server(1, false);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Cancelling a running travel makes a concurrent/later `wait` report
/// `TravelError::Cancelled`, not a bare timeout.
#[test]
fn cancelled_travel_reports_typed_cancellation() {
    let g = random_graph(9, 40);
    let q = failover_query();
    let dir = tmp("typed-cancel");
    // Drop 100% of the relayed data plane: the travel can never finish,
    // but the raw control plane (Cancel/CancelAck) still flows.
    let plan = ChaosPlan {
        drop: 1.0,
        ..ChaosPlan::lossy(9)
    };
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek).chaos(plan),
    )
    .unwrap();
    let ticket = cluster.start(&q).unwrap();
    assert!(cluster.cancel(&ticket).unwrap(), "travel had started");
    let err = cluster.wait(&ticket, Duration::from_millis(200));
    assert!(
        matches!(
            err,
            Err(ClusterError::Travel(TravelError::Cancelled { travel })) if travel == ticket.travel()
        ),
        "expected typed cancellation, got {err:?}"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Without the reliable-delivery layer there is no journal to re-announce
/// from, so a dead coordinator is unrecoverable: `wait` must fail fast
/// with `CoordinatorLost` instead of burning its whole timeout.
#[test]
fn coordinator_loss_without_reliability_is_typed() {
    let g = random_graph(13, 40);
    let q = failover_query();
    let dir = tmp("coord-lost");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek).force_reliable_delivery(false),
    )
    .unwrap();
    cluster.isolate_server(0, true); // stall so the crash lands mid-travel
    let ticket = cluster.start(&q).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    cluster.crash_server(1).unwrap(); // travel 1's coordinator
    let started = std::time::Instant::now();
    let err = cluster.wait(&ticket, Duration::from_secs(30));
    assert!(
        matches!(
            err,
            Err(ClusterError::Travel(TravelError::CoordinatorLost { travel }))
                if travel == ticket.travel()
        ),
        "expected CoordinatorLost, got {err:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "loss must be detected promptly, not at the timeout"
    );
    assert_eq!(cluster.active_travels(), 0, "slot must be released");
    cluster.restart_server(1).unwrap();
    cluster.isolate_server(0, false);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Client re-routing and bookkeeping across failover
// ---------------------------------------------------------------------

/// After a failover the client transparently re-routes progress queries
/// to the successor: the timeout's attached snapshot reflects the
/// *successor's* re-driven ledger (the restarted original knows nothing
/// about the travel anymore).
#[test]
fn progress_reroutes_to_successor_after_failover() {
    let g = random_graph(17, 40);
    let q = failover_query();
    let dir = tmp("reroute");
    // Drop 100% of the relayed data plane so the travel outlives the
    // failover (the control plane — recover/handoff/re-announce and
    // progress queries — is raw and keeps flowing), then kill the
    // coordinator explicitly.
    let plan = ChaosPlan {
        drop: 1.0,
        ..ChaosPlan::lossy(17)
    };
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek).chaos(plan),
    )
    .unwrap();
    let ticket = cluster.start(&q).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    cluster.crash_server(1).unwrap();
    let err = cluster.wait(&ticket, Duration::from_millis(800));
    match err {
        Err(ClusterError::Travel(TravelError::Timeout { last_progress, .. })) => {
            let p = last_progress
                .expect("successor coordinator must answer the re-routed progress query");
            assert!(
                p.created > 0,
                "snapshot must come from the successor's live ledger, \
                 not the restarted original's empty state"
            );
        }
        other => panic!("stalled travel must still time out, got {other:?}"),
    }
    let m = cluster.metrics();
    assert_eq!(
        m[2].failovers, 1,
        "server 2 must have taken the travel over"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Admission bookkeeping survives a failover: a queued travel's
/// `admit_wait` keeps measuring from its original submission, and the
/// failed-over travel's slot is accounted under the same travel id
/// (releasing normally on completion).
#[test]
fn admission_timestamps_survive_failover() {
    let g = random_graph(19, 50);
    let q = failover_query();
    let want = oracle_map(&g, &q);
    let dir = tmp("admit-wait");
    let plan = ChaosPlan {
        crashes: vec![CrashPoint::coordinator(1, 4)],
        ..ChaosPlan::none()
    };
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek)
            .chaos(plan)
            .max_concurrent_travels(1),
    )
    .unwrap();
    let first = cluster.start(&q).unwrap(); // coordinator 1: will crash
    let queued = cluster.start(&q).unwrap(); // parked behind the limit
    assert_eq!(cluster.pending_travels(), 1);
    let a = cluster.wait(&first, Duration::from_secs(30)).unwrap();
    assert_eq!(a.by_depth, want, "failed-over travel diverged");
    assert_eq!(a.failovers, 1);
    let b = cluster.wait(&queued, Duration::from_secs(30)).unwrap();
    assert_eq!(b.by_depth, want, "queued travel diverged");
    assert!(
        b.admit_wait > Duration::ZERO,
        "queued travel's admission wait spans the whole failover episode"
    );
    assert_eq!(cluster.active_travels(), 0);
    assert_eq!(cluster.pending_travels(), 0);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A healthy reliable-delivery cluster (no chaos, no crashes) must keep
/// every failover counter at exactly zero — the machinery is free until
/// a coordinator actually dies.
#[test]
fn no_crash_means_zero_failover_counters() {
    let g = random_graph(29, 50);
    let q = failover_query();
    let want = oracle_map(&g, &q);
    let dir = tmp("dormant-failover");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        EngineConfig::new(EngineKind::GraphTrek).force_reliable_delivery(true),
    )
    .unwrap();
    let got = cluster.submit(&q).unwrap();
    assert_eq!(got.by_depth, want);
    assert_eq!(got.failovers, 0);
    for (s, m) in cluster.metrics().into_iter().enumerate() {
        for (name, value) in m.failover_counters() {
            assert_eq!(value, 0, "server {s}: `{name}` moved without a crash");
        }
        for (name, value) in m.placement_counters() {
            assert_eq!(value, 0, "server {s}: `{name}` moved on a static cluster");
        }
        for (name, value) in m.self_heal_counters() {
            assert_eq!(
                value, 0,
                "server {s}: `{name}` moved with detection disabled"
            );
        }
        for (name, value) in m.snapshot_counters() {
            assert_eq!(
                value, 0,
                "server {s}: `{name}` moved with versioning disabled"
            );
        }
    }
    assert_eq!(cluster.net_stats().handoffs(), 0);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
