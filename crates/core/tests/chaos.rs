//! Deterministic fault-simulation suite (FoundationDB-style): every test
//! derives its fault schedule from a seed, so a failure is replayed
//! exactly by re-running with the seed it prints.
//!
//! The chaos layer ([`graphtrek::faults::ChaosPlan`]) drops, duplicates,
//! delays and reorders inter-server data-plane messages and crashes
//! scripted servers mid-traversal; the reliable-delivery machinery in the
//! server (sequence-numbered relays, acks, retransmission with capped
//! backoff, redelivery dedupe, epoch fencing) plus the client's
//! timeout-and-resubmit loop must keep every engine's results equal to
//! the single-threaded oracle.

use graphtrek::oracle;
use graphtrek::prelude::*;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-chaos-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Random layered metadata-ish graph (same shape as the equivalence
/// suite: cycles, multi-label edges, property filters have teeth).
fn random_graph(seed: u64, n: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = InMemoryGraph::new();
    let types = ["User", "Execution", "File"];
    let labels = ["run", "read", "write", "link"];
    for i in 0..n {
        let t = types[rng.gen_range(0..types.len())];
        g.add_vertex(Vertex::new(
            i,
            t,
            Props::new().with("w", rng.gen_range(0..10) as i64),
        ));
    }
    for _ in 0..n * 4 {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let label = labels[rng.gen_range(0..labels.len())];
        g.add_edge(Edge::new(
            src,
            label,
            dst,
            Props::new().with("ts", rng.gen_range(0..100) as i64),
        ));
    }
    g
}

/// A query mixing depth, filters and an intermediate rtn() — used where
/// semantic richness matters more than traffic volume.
fn chaos_query() -> GTravel {
    GTravel::v([0u64, 1, 2, 3, 4, 5])
        .e("link")
        .rtn()
        .e("read")
        .va(PropFilter::range("w", 0i64, 8i64))
        .e("link")
        .e("link")
}

/// Layered fan-out graph: every step's frontier spans every server, so a
/// traversal generates steady cross-server traffic at every depth — the
/// workload crash points and lossy links need to reliably have targets.
fn fanout_graph(n_layers: u64, width: u64) -> InMemoryGraph {
    let mut g = InMemoryGraph::new();
    let mut rng = SmallRng::seed_from_u64(7);
    let id = |layer: u64, i: u64| layer * width + i;
    for layer in 0..n_layers {
        for i in 0..width {
            g.add_vertex(Vertex::new(
                id(layer, i),
                "N",
                Props::new().with("layer", layer as i64),
            ));
        }
    }
    for layer in 0..n_layers - 1 {
        for i in 0..width {
            for _ in 0..4 {
                let j = rng.gen_range(0..width);
                g.add_edge(Edge::new(
                    id(layer, i),
                    "next",
                    id(layer + 1, j),
                    Props::new(),
                ));
            }
        }
    }
    g
}

/// Deep traversal over the fan-out graph with a mid-chain rtn(), so the
/// chaos layer also gets origin-token traffic to interfere with.
fn deep_query(steps: usize) -> GTravel {
    let mut q = GTravel::v((0..16u64).collect::<Vec<_>>());
    for s in 0..steps {
        q = q.e("next");
        if s == steps / 2 {
            q = q.rtn();
        }
    }
    q
}

fn oracle_map(g: &InMemoryGraph, q: &GTravel) -> BTreeMap<u16, Vec<VertexId>> {
    oracle::traverse(g, &q.compile().unwrap())
        .by_depth
        .iter()
        .map(|(&d, s)| (d, s.iter().copied().collect()))
        .collect()
}

/// Run `f` with a watcher thread that restarts any server that executed
/// a scripted crash (the "operator" of the simulated cluster). The
/// restart is delayed a beat so the cluster genuinely runs degraded.
fn with_auto_restart<T>(cluster: &Cluster, f: impl FnOnce() -> T) -> T {
    // Raise the stop flag even when `f` panics (via unwind), so the
    // scope's implicit join terminates and the panic surfaces as a test
    // failure instead of a hang.
    struct StopOnExit<'a>(&'a AtomicBool);
    impl Drop for StopOnExit<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let watcher = s.spawn(|| {
            while !stop.load(Ordering::SeqCst) {
                for id in 0..cluster.n_servers() {
                    if cluster.server_crashed(id) {
                        std::thread::sleep(Duration::from_millis(100));
                        if let Err(e) = cluster.restart_server(id) {
                            // A concurrent coordinator failover may have
                            // restarted the server already; only a server
                            // that is *still* down is a real failure.
                            assert!(!cluster.server_crashed(id), "restart failed: {e}");
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let stopper = StopOnExit(&stop);
        let out = f();
        drop(stopper);
        watcher.join().unwrap();
        out
    })
}

// ---------------------------------------------------------------------
// Determinism of the schedule itself
// ---------------------------------------------------------------------

/// The fault schedule is a pure function of (seed, message key): two
/// evaluations agree decision-by-decision, independent of thread timing,
/// and a different seed produces a different schedule.
#[test]
fn fault_schedule_is_a_pure_function_of_the_seed() {
    let a = ChaosPlan::lossy(42).net_chaos(4);
    let b = ChaosPlan::lossy(42).net_chaos(4);
    let c = ChaosPlan::lossy(43).net_chaos(4);
    let mut diverged = 0;
    for key in 0..4096u64 {
        let da = a.decide(key);
        let db = b.decide(key);
        assert_eq!(da.drop, db.drop, "seed 42, key {key}");
        assert_eq!(da.duplicate, db.duplicate, "seed 42, key {key}");
        assert_eq!(da.extra_delay, db.extra_delay, "seed 42, key {key}");
        let dc = c.decide(key);
        if da.drop != dc.drop || da.duplicate != dc.duplicate {
            diverged += 1;
        }
    }
    assert!(
        diverged > 100,
        "seeds 42 and 43 gave near-identical schedules"
    );
}

// ---------------------------------------------------------------------
// Lossy transport: drops, duplicates, delays, reordering
// ---------------------------------------------------------------------

/// Under ≥5% drop, ≥5% duplication and reordering delays, every engine
/// still returns exactly the oracle's result, and the reliable-delivery
/// layer visibly worked (retransmissions and redeliveries happened).
#[test]
fn lossy_transport_preserves_oracle_equivalence_on_all_engines() {
    let seed = 4242;
    let g = fanout_graph(7, 32);
    let q = deep_query(6);
    let want = oracle_map(&g, &q);
    for kind in EngineKind::all() {
        let dir = tmp(&format!("lossy-{kind:?}"));
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            EngineConfig::new(kind).chaos(ChaosPlan::lossy(seed)),
        )
        .unwrap();
        let got = cluster
            .submit_opts(&q, Duration::from_secs(20), 2)
            .unwrap_or_else(|e| panic!("{kind:?} failed under chaos seed {seed}: {e}"));
        assert_eq!(
            got.by_depth, want,
            "{kind:?} diverged from oracle under chaos seed {seed}"
        );
        // Completion tracing still balances.
        assert_eq!(got.progress.created, got.progress.terminated);
        let m = cluster.metrics();
        let retries: u64 = m.iter().map(|m| m.relay_retries).sum();
        let redeliveries: u64 = m.iter().map(|m| m.redeliveries).sum();
        assert!(
            retries > 0,
            "{kind:?}: an 8% drop rate must force retransmissions (seed {seed})"
        );
        assert!(
            redeliveries > 0,
            "{kind:?}: duplication + retransmission must cause dedupes (seed {seed})"
        );
        // The fabric really did inject faults.
        let net = cluster.net_stats();
        assert!(net.chaos_dropped() > 0, "no drops injected (seed {seed})");
        assert!(
            net.chaos_duplicated() > 0,
            "no duplicates injected (seed {seed})"
        );
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Replaying the same seed replays the same faults: two clusters built
/// from one seed agree with each other (and the oracle) on every query
/// of a small workload.
#[test]
fn same_seed_same_results_across_replays() {
    let seed = 77;
    let g = random_graph(seed, 50);
    let queries = [
        chaos_query(),
        GTravel::v([0u64, 9, 17]).e("link").e("link").e("link"),
        GTravel::v_all()
            .va(PropFilter::eq("type", "Execution"))
            .rtn()
            .e("read"),
    ];
    let mut runs = Vec::new();
    for run in 0..2 {
        let dir = tmp(&format!("replay-{run}"));
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            EngineConfig::new(EngineKind::GraphTrek).chaos(ChaosPlan::lossy(seed)),
        )
        .unwrap();
        let results: Vec<_> = queries
            .iter()
            .map(|q| {
                cluster
                    .submit_opts(q, Duration::from_secs(20), 2)
                    .unwrap_or_else(|e| panic!("run {run} failed under chaos seed {seed}: {e}"))
                    .by_depth
            })
            .collect();
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        runs.push(results);
    }
    assert_eq!(
        runs[0], runs[1],
        "two replays of chaos seed {seed} disagreed"
    );
    for (q, got) in queries.iter().zip(&runs[0]) {
        assert_eq!(got, &oracle_map(&g, q), "seed {seed} diverged from oracle");
    }
}

// ---------------------------------------------------------------------
// Scripted crash + restart
// ---------------------------------------------------------------------

/// A scripted mid-traversal crash of one server (plus lossy transport),
/// restarted by a watcher: the client's timeout-and-resubmit loop must
/// land every engine on the oracle's result, the crash/recovery counters
/// must record the incident, and termination must still be detected.
#[test]
fn scripted_crash_and_restart_recovers_on_all_engines() {
    let seed = 9001;
    let g = fanout_graph(7, 32);
    let q = deep_query(6);
    let want = oracle_map(&g, &q);
    for kind in EngineKind::all() {
        let dir = tmp(&format!("crash-{kind:?}"));
        let plan = ChaosPlan {
            seed,
            drop: 0.03,
            duplicate: 0.03,
            delay: 0.1,
            max_delay: Duration::from_millis(1),
            reorder: true,
            crashes: vec![CrashPoint::frontier(1, 1, 4)],
        };
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            EngineConfig::new(kind).chaos(plan),
        )
        .unwrap();
        let got = with_auto_restart(&cluster, || {
            cluster
                .submit_opts(&q, Duration::from_secs(5), 10)
                .unwrap_or_else(|e| panic!("{kind:?} never recovered (seed {seed}): {e}"))
        });
        assert_eq!(
            got.by_depth, want,
            "{kind:?} diverged after crash+restart (seed {seed})"
        );
        assert_eq!(got.progress.created, got.progress.terminated);
        let m = cluster.metrics();
        assert_eq!(m[1].crashes, 1, "{kind:?}: crash point must fire once");
        assert_eq!(m[1].recoveries, 1, "{kind:?}: watcher must restart once");
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A crash point is one-shot: after recovery the same cluster keeps
/// serving traversals indefinitely without further incident.
#[test]
fn recovered_cluster_keeps_serving() {
    let seed = 31337;
    let g = fanout_graph(6, 32);
    let q = deep_query(5);
    let want = oracle_map(&g, &q);
    let dir = tmp("post-crash");
    let plan = ChaosPlan {
        crashes: vec![CrashPoint::frontier(0, 1, 3)],
        ..ChaosPlan::none()
    };
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek).chaos(plan),
    )
    .unwrap();
    let first = with_auto_restart(&cluster, || {
        cluster
            .submit_opts(&q, Duration::from_secs(5), 10)
            .expect("recovery failed")
    });
    assert_eq!(first.by_depth, want, "seed {seed}");
    // Healthy from here on: no watcher, tight timeout, no restarts.
    for _ in 0..3 {
        let again = cluster.submit_opts(&q, Duration::from_secs(30), 0).unwrap();
        assert_eq!(again.by_depth, want, "post-recovery run diverged");
        assert_eq!(again.restarts, 0);
    }
    let m = cluster.metrics();
    assert_eq!(m[0].crashes, 1);
    assert_eq!(m[0].recoveries, 1);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Progress under chaos
// ---------------------------------------------------------------------

/// `progress()` snapshots never regress (created and terminated are
/// monotone) even while messages are dropped, duplicated and reordered.
#[test]
fn progress_is_monotone_under_chaos() {
    let seed = 555;
    let g = fanout_graph(7, 32);
    let dir = tmp("monotone");
    // Stragglers slow the traversal so progress is observable mid-flight.
    let faults = FaultPlan {
        stragglers: (1..6)
            .map(|step| Straggler {
                server: 0,
                step,
                delay: Duration::from_millis(2),
                count: 100,
            })
            .collect(),
    };
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek)
            .chaos(ChaosPlan::lossy(seed))
            .faults(faults),
    )
    .unwrap();
    let ticket = cluster.start(&deep_query(6)).unwrap();
    let mut last = (0u64, 0u64);
    for _ in 0..40 {
        let p = cluster.progress(&ticket).unwrap();
        if last.0 > 0 && p.created == 0 {
            // The travel completed and the coordinator pruned its ledger;
            // later queries read an empty snapshot. Not a regression.
            break;
        }
        assert!(
            p.created >= last.0 && p.terminated >= last.1,
            "progress regressed under chaos seed {seed}: {last:?} -> {p:?}"
        );
        last = (p.created, p.terminated);
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(last.0 > 0, "never observed any progress (seed {seed})");
    let r = cluster.wait(&ticket, Duration::from_secs(30)).unwrap();
    assert_eq!(r.progress.created, r.progress.terminated);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Timeout ⇒ slot release (regression)
// ---------------------------------------------------------------------

/// Regression: a permanently-lost travel must make `Cluster::wait`
/// return a typed `TravelError::Timeout` — not hang — AND free its
/// admission slot so a queued travel still gets to run.
#[test]
fn wait_timeout_frees_admission_slot_for_pending_travel() {
    let g = random_graph(8, 40);
    let q = GTravel::v([0u64, 1, 2]).e("link").e("read");
    let want = oracle_map(&g, &q);
    let dir = tmp("slot-release");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek)
            .max_concurrent_travels(1)
            .force_reliable_delivery(true),
    )
    .unwrap();
    // Travel ids start at 1 ⇒ the first travel's coordinator is server 1.
    // Isolating it swallows the submission: that travel can never finish.
    cluster.isolate_server(1, true);
    let doomed = cluster.start(&q).unwrap();
    let queued = cluster.start(&q).unwrap();
    assert_eq!(cluster.pending_travels(), 1, "limit 1 must park travel 2");
    let err = cluster.wait(&doomed, Duration::from_millis(300));
    assert!(
        matches!(
            err,
            Err(graphtrek::cluster::ClusterError::Travel(
                graphtrek::cluster::TravelError::Timeout { .. }
            ))
        ),
        "lost travel must time out, got {err:?}"
    );
    // The timeout released the slot: the queued travel was dispatched.
    assert_eq!(cluster.pending_travels(), 0, "queued travel still parked");
    assert_eq!(cluster.active_travels(), 1);
    // Heal the network; reliable delivery retransmits whatever the
    // queued travel lost while server 1 was dark.
    cluster.isolate_server(1, false);
    let got = cluster.wait(&queued, Duration::from_secs(30)).unwrap();
    assert_eq!(got.by_depth, want);
    assert!(got.admit_wait > Duration::ZERO, "travel 2 queued, then ran");
    assert_eq!(cluster.active_travels(), 0);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Isolation mid-travel: stall, then heal
// ---------------------------------------------------------------------

/// Isolating a server mid-travel stalls progress; reconnecting lets the
/// retransmission layer heal the partition and the travel completes with
/// the oracle's result. Progress never regresses through the episode.
#[test]
fn isolation_stalls_then_heals_to_completion() {
    let seed = 2024;
    let g = fanout_graph(7, 32);
    let q = deep_query(6);
    let want = oracle_map(&g, &q);
    let dir = tmp("heal");
    // Slow the traversal (stragglers on the coordinator) so the
    // isolation window reliably lands mid-flight.
    let faults = FaultPlan {
        stragglers: (1..6)
            .map(|step| Straggler {
                server: 1,
                step,
                delay: Duration::from_millis(2),
                count: 100,
            })
            .collect(),
    };
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek)
            .force_reliable_delivery(true)
            .faults(faults),
    )
    .unwrap();
    let ticket = cluster.start(&q).unwrap();
    // Cut off the non-coordinator backend once the travel is observably
    // mid-flight (coordinator is travel 1 % 2 = server 1, so progress
    // queries keep working while server 0 is dark).
    let mut armed = false;
    for _ in 0..200 {
        let p = cluster.progress(&ticket).unwrap();
        if p.outstanding() > 0 {
            armed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(armed, "travel never showed outstanding work (seed {seed})");
    cluster.isolate_server(0, true);
    let mut last = (0u64, 0u64);
    for _ in 0..20 {
        let p = cluster.progress(&ticket).unwrap();
        assert!(
            !(last.0 > 0 && p.created == 0),
            "travel completed while server 0 was isolated (seed {seed})"
        );
        assert!(
            p.created >= last.0 && p.terminated >= last.1,
            "progress regressed during isolation"
        );
        last = (p.created, p.terminated);
        std::thread::sleep(Duration::from_millis(5));
    }
    // The travel cannot have finished with half the graph unreachable.
    let stalled = cluster.progress(&ticket).unwrap();
    assert!(
        stalled.outstanding() > 0,
        "travel claims completion while server 0 is isolated"
    );
    cluster.isolate_server(0, false);
    let got = cluster.wait(&ticket, Duration::from_secs(30)).unwrap();
    assert_eq!(got.by_depth, want, "healed travel diverged (seed {seed})");
    assert_eq!(got.progress.created, got.progress.terminated);
    let retries: u64 = cluster.metrics().iter().map(|m| m.relay_retries).sum();
    assert!(retries > 0, "healing must have gone through retransmission");
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Crash-recovery durability
// ---------------------------------------------------------------------

/// WAL-acked ingest survives a crash+restart of the owning server: the
/// restarted incarnation replays its WAL and a subsequent traversal (and
/// point lookup) sees the data.
#[test]
fn acked_ingest_survives_owner_crash_and_restart() {
    let mut g = random_graph(6, 40);
    let dir = tmp("durable");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    // New vertices + edges; place the new vertex on a known owner.
    let new_v = 1000u64;
    let owner = cluster.partitioner().owner(VertexId(new_v));
    let vertices = vec![Vertex::new(new_v, "File", Props::new().with("w", 3i64))];
    let edges = vec![
        Edge::new(0u64, "link", new_v, Props::new().with("ts", 5i64)),
        Edge::new(new_v, "read", 1u64, Props::new().with("ts", 6i64)),
    ];
    let applied = cluster.ingest(vertices.clone(), edges.clone()).unwrap();
    assert!(applied > 0, "ingest must be acked before the crash");
    // Kill the owner mid-life, then bring it back: its memtable dies
    // with it, so visibility after restart proves WAL replay.
    cluster.crash_server(owner).unwrap();
    assert!(cluster.server_crashed(owner));
    cluster.restart_server(owner).unwrap();
    // The in-memory oracle graph gets the same update.
    for v in vertices {
        g.add_vertex(v);
    }
    for e in edges {
        g.add_edge(e);
    }
    let q = GTravel::v([0u64]).e("link").e("read");
    let got = cluster.submit(&q).unwrap();
    assert_eq!(
        got.by_depth,
        oracle_map(&g, &q),
        "ingested data lost across crash+restart"
    );
    let fetched = cluster.get_vertex(VertexId(new_v)).unwrap();
    assert_eq!(fetched.map(|v| v.id), Some(VertexId(new_v)));
    let m = cluster.metrics();
    assert_eq!(m[owner].crashes, 1);
    assert_eq!(m[owner].recoveries, 1);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Clean-path guarantee: chaos off ⇒ machinery fully dormant
// ---------------------------------------------------------------------

/// With `ChaosPlan::none()` the reliable-delivery layer is disabled and
/// every chaos/retry counter stays at exactly zero — the benchmark paths
/// are byte-identical to a build without the chaos layer.
#[test]
fn chaos_off_means_zero_overhead_counters() {
    let g = random_graph(3, 50);
    let dir = tmp("dormant");
    let ecfg = EngineConfig::new(EngineKind::GraphTrek);
    assert!(!ecfg.reliable_delivery_enabled());
    let cluster = Cluster::build(&g, ClusterConfig::new(&dir, 3), ecfg).unwrap();
    cluster.submit(&chaos_query()).unwrap();
    for (s, m) in cluster.metrics().into_iter().enumerate() {
        // Every fault counter, by name, must be exactly zero: the helper
        // enumerates them so a newly added counter is covered without
        // touching this test.
        for (name, value) in m.fault_counters() {
            assert_eq!(value, 0, "server {s}: `{name}` moved with chaos off");
        }
    }
    let net = cluster.net_stats();
    assert_eq!(net.chaos_dropped(), 0);
    assert_eq!(net.chaos_duplicated(), 0);
    assert_eq!(net.chaos_delayed(), 0);
    assert_eq!(net.handoffs(), 0, "no coordinator handoff with chaos off");
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Long lane: randomized seeds (nightly `--ignored` run)
// ---------------------------------------------------------------------

/// Seed-randomized chaos sweep. Each iteration prints its seed before
/// running, so a nightly failure is reproducible by exporting
/// `GT_CHAOS_SEED=<seed>` and re-running this test.
#[test]
#[ignore = "long randomized lane; run with --ignored (nightly cron)"]
fn randomized_chaos_sweep() {
    let base = std::env::var("GT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_secs()
        });
    for i in 0..4u64 {
        let seed = base.wrapping_add(i);
        println!("randomized_chaos_sweep: GT_CHAOS_SEED={seed}");
        let g = random_graph(seed, 50);
        let q = chaos_query();
        let want = oracle_map(&g, &q);
        for kind in EngineKind::all() {
            let dir = tmp(&format!("sweep-{i}-{kind:?}"));
            // Alternate between frontier-triggered crashes and crashes
            // triggered by coordinator bookkeeping traffic, so the sweep
            // also exercises coordinator failover end to end.
            let victim = (seed % 3) as usize;
            let crash = if seed % 2 == 0 {
                CrashPoint::frontier(victim, 1, 3 + seed % 5)
            } else {
                CrashPoint::coordinator(victim, 3 + seed % 5)
            };
            let plan = ChaosPlan {
                crashes: vec![crash],
                ..ChaosPlan::lossy(seed)
            };
            let cluster = Cluster::build(
                &g,
                ClusterConfig::new(&dir, 3),
                EngineConfig::new(kind).chaos(plan),
            )
            .unwrap();
            let got = with_auto_restart(&cluster, || {
                cluster
                    .submit_opts(&q, Duration::from_secs(5), 20)
                    .unwrap_or_else(|e| {
                        panic!("{kind:?} failed; reproduce with GT_CHAOS_SEED={seed}: {e}")
                    })
            });
            assert_eq!(
                got.by_depth, want,
                "{kind:?} diverged; reproduce with GT_CHAOS_SEED={seed}"
            );
            cluster.shutdown();
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
