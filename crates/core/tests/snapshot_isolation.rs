//! MVCC snapshot-isolation suite: travels over a mutating graph.
//!
//! With `EngineConfig::snapshot_isolation(true)` every travel freezes a
//! cluster-wide read view at admission (the stamp rides the plan through
//! every coordinator message), so a traversal racing live ingest sees
//! exactly the graph that existed when it was admitted — never a torn
//! mix of old and new rows. The suite proves that on all three engines,
//! across coordinator failover, live shard migration and seeded chaos
//! crashes, and that explicit time-travel (`as_of`, `created_after`)
//! pins reads to named sequence numbers. A dormancy lane proves the
//! whole subsystem is free when the flag is off.

use graphtrek::oracle;
use graphtrek::prelude::*;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-snap-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Random layered metadata-ish graph (same shape as the chaos suite).
fn random_graph(seed: u64, n: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = InMemoryGraph::new();
    let types = ["User", "Execution", "File"];
    let labels = ["run", "read", "write", "link"];
    for i in 0..n {
        let t = types[rng.gen_range(0..types.len())];
        g.add_vertex(Vertex::new(
            i,
            t,
            Props::new().with("w", rng.gen_range(0..10) as i64),
        ));
    }
    for _ in 0..n * 4 {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let label = labels[rng.gen_range(0..labels.len())];
        g.add_edge(Edge::new(
            src,
            label,
            dst,
            Props::new().with("ts", rng.gen_range(0..100) as i64),
        ));
    }
    g
}

/// A query whose depth-1 frontier is rtn()'d, so fresh "link" edges off
/// the sources change the result immediately, and whose deeper hops give
/// multi-version reads at every depth something to leak through.
fn snap_query() -> GTravel {
    GTravel::v([0u64, 1, 2, 3, 4, 5])
        .e("link")
        .rtn()
        .e("read")
        .va(PropFilter::range("w", 0i64, 8i64))
        .e("link")
        .e("link")
}

fn oracle_map(g: &InMemoryGraph, q: &GTravel) -> BTreeMap<u16, Vec<VertexId>> {
    oracle::traverse(g, &q.compile().unwrap())
        .by_depth
        .iter()
        .map(|(&d, s)| (d, s.iter().copied().collect()))
        .collect()
}

fn versioned(kind: EngineKind) -> EngineConfig {
    EngineConfig::new(kind).snapshot_isolation(true)
}

/// New vertices (`ids`, type File, w = 1 so the w-filter passes) hung
/// off the base sources by fresh "link" edges — depth 1 is rtn()'d, so
/// [`snap_query`]'s result provably changes — plus "read"/"link" chains
/// between the new vertices so deeper depths move too. Every row (vertex
/// id and edge source) is owned by a server `!= avoid`, so batches can
/// be applied while that server is isolated or crashed.
fn growth_rows(
    cluster: &Cluster,
    avoid: Option<usize>,
    ids: std::ops::Range<u64>,
) -> (Vec<Vertex>, Vec<Edge>) {
    let owner = |id: u64| {
        let m = cluster.placement();
        m.primary_of(m.partition_of(VertexId(id)))
    };
    let keep = |id: u64| avoid != Some(owner(id));
    let sources: Vec<u64> = (0..6).filter(|&s| keep(s)).collect();
    assert!(!sources.is_empty(), "no ingest-safe base source");
    let nv: Vec<u64> = ids.filter(|&id| keep(id)).collect();
    assert!(!nv.is_empty(), "no ingest-safe fresh vertex id");
    let mut vs = Vec::new();
    let mut es = Vec::new();
    for (i, &id) in nv.iter().enumerate() {
        vs.push(Vertex::new(id, "File", Props::new().with("w", 1i64)));
        es.push(Edge::new(
            sources[i % sources.len()],
            "link",
            id,
            Props::new().with("ts", 1i64),
        ));
        if i > 0 {
            es.push(Edge::new(
                nv[i - 1],
                "read",
                id,
                Props::new().with("ts", 1i64),
            ));
            es.push(Edge::new(
                nv[i - 1],
                "link",
                id,
                Props::new().with("ts", 1i64),
            ));
        }
    }
    (vs, es)
}

fn apply(g: &mut InMemoryGraph, vs: &[Vertex], es: &[Edge]) {
    for v in vs {
        g.add_vertex(v.clone());
    }
    for e in es {
        g.add_edge(e.clone());
    }
}

/// Run `f` with a watcher thread that restarts any server a scripted
/// crash point takes down (same operator loop as the chaos suite).
fn with_auto_restart<T>(cluster: &Cluster, f: impl FnOnce() -> T) -> T {
    struct StopOnExit<'a>(&'a AtomicBool);
    impl Drop for StopOnExit<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let watcher = s.spawn(|| {
            while !stop.load(Ordering::SeqCst) {
                for id in 0..cluster.n_servers() {
                    if cluster.server_crashed(id) {
                        std::thread::sleep(Duration::from_millis(100));
                        if let Err(e) = cluster.restart_server(id) {
                            assert!(!cluster.server_crashed(id), "restart failed: {e}");
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let stopper = StopOnExit(&stop);
        let out = f();
        drop(stopper);
        watcher.join().unwrap();
        out
    })
}

// ---------------------------------------------------------------------
// Tentpole: live ingest is invisible to an admitted travel, all engines
// ---------------------------------------------------------------------

/// A travel is admitted, then — while it is provably still in flight
/// (one shard's server is isolated, stalling the frontier) — rows that
/// would change its result at several depths are ingested and acked.
/// After the partition heals, the travel must return exactly the oracle
/// on the frozen pre-ingest graph; the next travel sees the new rows.
#[test]
fn live_ingest_stays_invisible_until_the_next_travel() {
    let g = random_graph(11, 50);
    let q = snap_query();
    let want_frozen = oracle_map(&g, &q);
    for kind in EngineKind::all() {
        let dir = tmp(&format!("steady-{kind:?}"));
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            versioned(kind).force_reliable_delivery(true),
        )
        .unwrap();
        // Travel 1's coordinator is server 1; stall the travel by
        // isolating some other server that owns a source shard.
        let iso = (0..6u64)
            .map(|s| {
                let m = cluster.placement();
                m.primary_of(m.partition_of(VertexId(s)))
            })
            .find(|&o| o != 1)
            .expect("some source must live off the coordinator");
        cluster.isolate_server(iso, true);
        let ticket = cluster.start(&q).unwrap(); // read view freezes here
        let (vs, es) = growth_rows(&cluster, Some(iso), 1000..1012);
        let mut g_after = g.clone();
        apply(&mut g_after, &vs, &es);
        let want_after = oracle_map(&g_after, &q);
        assert_ne!(
            want_frozen, want_after,
            "growth rows must change the result"
        );
        cluster.ingest(vs, es).unwrap(); // acked mid-travel
        cluster.isolate_server(iso, false);
        let got = cluster.wait(&ticket, Duration::from_secs(30)).unwrap();
        assert_eq!(
            got.by_depth, want_frozen,
            "{kind:?}: acked mid-travel ingest leaked into a frozen view"
        );
        let next = cluster.submit(&q).unwrap();
        assert_eq!(
            next.by_depth, want_after,
            "{kind:?}: a travel admitted after the ingest must see it"
        );
        for (s, m) in cluster.metrics().into_iter().enumerate() {
            assert!(
                m.views_pinned > 0,
                "{kind:?} server {s}: travels must pin their read views"
            );
        }
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Time travel: as_of() and created_after()
// ---------------------------------------------------------------------

/// `as_of(seq)` reruns a travel against any historical sequence number,
/// and `created_after(seq)` selects exactly the vertices stamped after
/// it — the paper's provenance queries ("what did this graph look like
/// before that pipeline ran?") as first-class predicates.
#[test]
fn as_of_and_created_after_pin_reads_to_explicit_seqs() {
    let g = random_graph(17, 40);
    let q = snap_query();
    let dir = tmp("asof");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        versioned(EngineKind::GraphTrek),
    )
    .unwrap();
    let s0 = cluster.current_seq();
    assert!(s0 > 0, "a versioned load must advance the cluster clock");

    let (vs_a, es_a) = growth_rows(&cluster, None, 1000..1008);
    let a_ids: Vec<VertexId> = vs_a.iter().map(|v| v.id).collect();
    let mut g_a = g.clone();
    apply(&mut g_a, &vs_a, &es_a);
    cluster.ingest(vs_a, es_a).unwrap();
    let s1 = cluster.current_seq();
    assert!(s1 > s0, "an acked ingest must advance the cluster clock");

    let (vs_b, es_b) = growth_rows(&cluster, None, 2000..2008);
    let b_ids: Vec<VertexId> = vs_b.iter().map(|v| v.id).collect();
    let mut g_b = g_a.clone();
    apply(&mut g_b, &vs_b, &es_b);
    cluster.ingest(vs_b, es_b).unwrap();

    // Latest view sees everything; each as_of() rewinds one batch.
    let now = cluster.submit(&q).unwrap();
    assert_eq!(now.by_depth, oracle_map(&g_b, &q));
    let at_a = cluster.submit(&snap_query().as_of(s1)).unwrap();
    assert_eq!(
        at_a.by_depth,
        oracle_map(&g_a, &q),
        "as_of(s1) must see A only"
    );
    let at_base = cluster.submit(&snap_query().as_of(s0)).unwrap();
    assert_eq!(
        at_base.by_depth,
        oracle_map(&g, &q),
        "as_of(s0) must see the base"
    );

    // created_after() selects exactly the later batches' vertices.
    let after_a = cluster.submit(&GTravel::v_all().created_after(s1)).unwrap();
    let want: BTreeMap<u16, Vec<VertexId>> = [(0u16, b_ids.clone())].into();
    assert_eq!(
        after_a.by_depth, want,
        "created_after(s1) must return batch B"
    );
    let after_base = cluster.submit(&GTravel::v_all().created_after(s0)).unwrap();
    let mut both = a_ids;
    both.extend(&b_ids);
    both.sort_unstable();
    let want: BTreeMap<u16, Vec<VertexId>> = [(0u16, both)].into();
    assert_eq!(
        after_base.by_depth, want,
        "created_after(s0) must return A and B"
    );

    // The wire grammar compiles to the same plans as the builders.
    let parsed = parse_gtravel(&format!("v(0,1,2,3,4,5).e('link').as_of({s1})")).unwrap();
    let built = GTravel::v([0u64, 1, 2, 3, 4, 5]).e("link").as_of(s1);
    assert_eq!(
        cluster.submit(&parsed).unwrap().by_depth,
        cluster.submit(&built).unwrap().by_depth
    );

    // Historical reads really did skip newer versions.
    let stale: u64 = cluster.metrics().iter().map(|m| m.stale_seq_reads).sum();
    assert!(stale > 0, "rewound travels must record stale-seq reads");
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// The frozen view survives coordinator failover
// ---------------------------------------------------------------------

/// The snapshot stamp lives in the plan, and the plan rides the ledger
/// hand-off: a travel whose coordinator dies mid-flight — while fresh
/// rows are acked underneath it — resumes on the successor reading the
/// same frozen view.
#[test]
fn frozen_view_survives_coordinator_failover() {
    let g = random_graph(23, 50);
    let q = snap_query();
    let want_frozen = oracle_map(&g, &q);
    for kind in EngineKind::all() {
        let dir = tmp(&format!("failover-{kind:?}"));
        // Travel 1's coordinator is server 1: kill it after a handful of
        // status-tracing events.
        let plan = ChaosPlan {
            crashes: vec![CrashPoint::coordinator(1, 4)],
            ..ChaosPlan::none()
        };
        let cluster =
            Cluster::build(&g, ClusterConfig::new(&dir, 3), versioned(kind).chaos(plan)).unwrap();
        let ticket = cluster.start(&q).unwrap();
        // Rows avoid the crashing server so the ingest acks promptly.
        let (vs, es) = growth_rows(&cluster, Some(1), 1000..1012);
        let mut g_after = g.clone();
        apply(&mut g_after, &vs, &es);
        cluster.ingest(vs, es).unwrap();
        let got = cluster
            .wait(&ticket, Duration::from_secs(30))
            .unwrap_or_else(|e| panic!("{kind:?}: travel must survive the crash: {e}"));
        assert_eq!(
            got.by_depth, want_frozen,
            "{kind:?}: failover re-drive must reuse the admission snapshot"
        );
        let m = cluster.metrics();
        if m[1].crashes == 1 {
            assert_eq!(got.failovers, 1, "{kind:?}: exactly one failover");
        }
        let next = cluster.submit(&q).unwrap();
        assert_eq!(
            next.by_depth,
            oracle_map(&g_after, &q),
            "{kind:?}: post-failover travels must see the ingested rows"
        );
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// The frozen view survives a live migration cutover
// ---------------------------------------------------------------------

/// Shard migration bulk-copies raw *stamped* rows (every version plus
/// tombstones), so a travel in flight across the cutover keeps its
/// frozen view, and historical `as_of` reads still work against the
/// shard's new home afterwards.
#[test]
fn frozen_view_survives_live_migration_cutover() {
    let g = random_graph(31, 50);
    let q = snap_query();
    let want_frozen = oracle_map(&g, &q);
    let dir = tmp("migrate");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        versioned(EngineKind::GraphTrek).force_reliable_delivery(true),
    )
    .unwrap();
    let s0 = cluster.current_seq();
    let ticket = cluster.start(&q).unwrap();
    let (vs, es) = growth_rows(&cluster, None, 1000..1012);
    let mut g_after = g.clone();
    apply(&mut g_after, &vs, &es);
    cluster.ingest(vs, es).unwrap();
    // Move a shard off server 0 while the travel is in flight and the
    // fresh rows are multi-version: the bulk copy must carry history.
    let partition = *cluster
        .placement()
        .primaried_by(0)
        .first()
        .expect("server 0 must primary something initially");
    cluster.migrate(partition, 2).unwrap();
    assert_eq!(cluster.placement().primary_of(partition), 2);
    let got = cluster.wait(&ticket, Duration::from_secs(30)).unwrap();
    assert_eq!(
        got.by_depth, want_frozen,
        "a travel spanning the cutover must keep its admission snapshot"
    );
    let next = cluster.submit(&q).unwrap();
    assert_eq!(next.by_depth, oracle_map(&g_after, &q));
    // Time travel across the migrated shard: the pre-ingest view is
    // still reconstructible from the shard's new home.
    let rewound = cluster.submit(&snap_query().as_of(s0)).unwrap();
    assert_eq!(
        rewound.by_depth, want_frozen,
        "migration must preserve historical versions"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Chaos lane: crashes + lossy transport + live ingest
// ---------------------------------------------------------------------

/// Seeded chaos proof: under a lossy, reordering fabric with a scripted
/// mid-traversal server crash (auto-restarted by the operator loop),
/// alternating acked ingest rounds with travels keeps every travel
/// exactly equal to the oracle of the rows acked at its admission —
/// crashes and retransmissions never tear a snapshot. `GT_CHAOS_SEED`
/// reruns the lane on any seed (the nightly sweep); the per-push CI job
/// uses the fixed default.
#[test]
fn chaos_crashes_with_live_ingest_never_tear_a_snapshot() {
    let seed: u64 = std::env::var("GT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242);
    let g = random_graph(seed, 40);
    let q = snap_query();
    let dir = tmp("chaos");
    let plan = ChaosPlan {
        seed,
        drop: 0.03,
        duplicate: 0.03,
        delay: 0.1,
        max_delay: Duration::from_millis(1),
        reorder: true,
        crashes: vec![CrashPoint::frontier(2, 1, 4)],
    };
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3),
        versioned(EngineKind::GraphTrek).chaos(plan),
    )
    .unwrap();
    let mut g_cum = g.clone();
    with_auto_restart(&cluster, || {
        for round in 0..3u64 {
            let ids = 1000 + round * 100..1008 + round * 100;
            // Rows avoid the crash-scripted server so ingest acks do not
            // race its downtime.
            let (vs, es) = growth_rows(&cluster, Some(2), ids);
            apply(&mut g_cum, &vs, &es);
            cluster.ingest(vs, es).unwrap();
            let got = cluster
                .submit_opts(&q, Duration::from_secs(5), 10)
                .unwrap_or_else(|e| panic!("round {round} died under chaos seed {seed}: {e}"));
            assert_eq!(
                got.by_depth,
                oracle_map(&g_cum, &q),
                "round {round}: snapshot tore under chaos seed {seed}"
            );
        }
    });
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Proptest lane: random interleavings of ingest and travels
// ---------------------------------------------------------------------

/// One randomized batch: rows hung off random base sources.
#[derive(Debug, Clone)]
struct BatchSpec {
    rows: Vec<u8>, // source picks
}

fn batch_spec() -> impl Strategy<Value = BatchSpec> {
    proptest::collection::vec(0u8..6, 1..6).prop_map(|rows| BatchSpec { rows })
}

fn realize_batch(bi: usize, spec: &BatchSpec) -> (Vec<Vertex>, Vec<Edge>) {
    let mut vs = Vec::new();
    let mut es = Vec::new();
    for (i, &src) in spec.rows.iter().enumerate() {
        let id = 2000 + (bi as u64) * 64 + i as u64;
        vs.push(Vertex::new(id, "File", Props::new().with("w", 1i64)));
        es.push(Edge::new(
            src as u64,
            "link",
            id,
            Props::new().with("ts", 1i64),
        ));
        if i > 0 {
            es.push(Edge::new(id - 1, "read", id, Props::new().with("ts", 1i64)));
        }
    }
    (vs, es)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// Random base graph, random batch list, random split point: batches
    /// before the split are acked before admission and must be visible;
    /// batches after it are acked mid/post-travel and must not be. The
    /// travel equals the oracle on the graph as of its admission seq,
    /// and a follow-up travel equals the oracle on everything.
    #[test]
    fn interleaved_ingest_matches_the_admission_oracle(
        seed in 0u64..1000,
        batches in proptest::collection::vec(batch_spec(), 1..4),
        split_pick in 0usize..4,
    ) {
        let g = random_graph(seed, 24);
        let q = snap_query();
        let split = split_pick.min(batches.len());
        let dir = tmp(&format!("prop-{seed}"));
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3),
            versioned(EngineKind::GraphTrek),
        )
        .unwrap();
        let mut mirror = g.clone();
        for (bi, b) in batches[..split].iter().enumerate() {
            let (vs, es) = realize_batch(bi, b);
            apply(&mut mirror, &vs, &es);
            cluster.ingest(vs, es).unwrap();
        }
        let frozen = mirror.clone();
        let ticket = cluster.start(&q).unwrap();
        for (bi, b) in batches[split..].iter().enumerate() {
            let (vs, es) = realize_batch(split + bi, b);
            apply(&mut mirror, &vs, &es);
            cluster.ingest(vs, es).unwrap();
        }
        let got = cluster.wait(&ticket, Duration::from_secs(30)).unwrap();
        let after = cluster.submit(&q).unwrap();
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(
            &got.by_depth,
            &oracle_map(&frozen, &q),
            "travel diverged from its admission-seq oracle (seed {}, split {})",
            seed,
            split
        );
        prop_assert_eq!(
            &after.by_depth,
            &oracle_map(&mirror, &q),
            "follow-up travel diverged from the full oracle (seed {})",
            seed
        );
    }
}

// ---------------------------------------------------------------------
// Dormancy: versioning off ⇒ the subsystem is free
// ---------------------------------------------------------------------

/// Without `snapshot_isolation()` the whole MVCC machinery must be
/// dormant: after replicated ingest, travels (including ones carrying
/// an `as_of` bound, which reads ignore on an unversioned store) and
/// point reads, the cluster clock never moves and every
/// `snapshot_counters()` entry on every server is exactly zero.
#[test]
fn versioning_off_keeps_every_snapshot_counter_at_zero() {
    let g = random_graph(41, 40);
    let q = snap_query();
    let want = oracle_map(&g, &q);
    let dir = tmp("dormant");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3).replication(2),
        EngineConfig::new(EngineKind::GraphTrek).force_reliable_delivery(true),
    )
    .unwrap();
    let (vs, es) = growth_rows(&cluster, None, 1000..1008);
    let mut g_after = g.clone();
    apply(&mut g_after, &vs, &es);
    let probe = vs[0].id;
    cluster.ingest(vs, es).unwrap();
    let got = cluster.submit(&q).unwrap();
    assert_eq!(got.by_depth, oracle_map(&g_after, &q));
    // An as_of bound on an unversioned cluster is inert: reads resolve
    // to the latest rows and no counter moves.
    let bounded = cluster.submit(&snap_query().as_of(1)).unwrap();
    assert_eq!(bounded.by_depth, oracle_map(&g_after, &q));
    assert_ne!(got.by_depth, want, "the ingest must have been visible");
    assert!(cluster.get_vertex(probe).unwrap().is_some());
    assert_eq!(cluster.current_seq(), 0, "clock must not move when off");
    for (s, m) in cluster.metrics().into_iter().enumerate() {
        for (name, value) in m.snapshot_counters() {
            assert_eq!(
                value, 0,
                "server {s}: `{name}` moved with versioning disabled"
            );
        }
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
