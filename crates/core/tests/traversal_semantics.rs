//! Scenario tests for tricky traversal semantics: token routing through
//! diamonds, self-loops, deep rtn chains, IN/float filters, and abort
//! behaviour — each checked against the oracle on every engine.

use graphtrek::oracle;
use graphtrek::prelude::*;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
use std::collections::BTreeMap;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-sem-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn check_all_engines(g: &InMemoryGraph, q: &GTravel, n_servers: usize, tag: &str) {
    let want = oracle::traverse(g, &q.compile().unwrap());
    let want_map: BTreeMap<u16, Vec<VertexId>> = want
        .by_depth
        .iter()
        .map(|(&d, s)| (d, s.iter().copied().collect()))
        .collect();
    for kind in EngineKind::all() {
        let dir = tmp(&format!("{tag}-{kind:?}"));
        let cluster = Cluster::build(
            g,
            ClusterConfig::new(&dir, n_servers),
            EngineConfig::new(kind),
        )
        .unwrap();
        let got = cluster.submit(q).unwrap();
        assert_eq!(got.by_depth, want_map, "{kind:?} diverged on {tag}");
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Diamond: s → {a, b} → t → end. With rtn() on {a,b}, both middles must
/// be returned exactly once even though their paths re-converge.
#[test]
fn rtn_through_diamond_returns_both_middles() {
    let mut g = InMemoryGraph::new();
    for (id, t) in [(1u64, "S"), (2, "M"), (3, "M"), (4, "T"), (5, "End")] {
        g.add_vertex(Vertex::new(id, t, Props::new()));
    }
    g.add_edge(Edge::new(1u64, "x", 2u64, Props::new()));
    g.add_edge(Edge::new(1u64, "x", 3u64, Props::new()));
    g.add_edge(Edge::new(2u64, "x", 4u64, Props::new()));
    g.add_edge(Edge::new(3u64, "x", 4u64, Props::new()));
    g.add_edge(Edge::new(4u64, "x", 5u64, Props::new()));
    let q = GTravel::v([1u64]).e("x").rtn().e("x").e("x");
    // Oracle sanity first.
    let want = oracle::traverse(&g, &q.compile().unwrap());
    assert_eq!(
        want.by_depth[&1],
        [VertexId(2), VertexId(3)].into(),
        "both diamond middles have completing paths"
    );
    check_all_engines(&g, &q, 3, "diamond");
}

/// Diamond where only ONE middle's continuation survives an edge filter:
/// the other middle must not be returned.
#[test]
fn rtn_token_dies_with_filtered_path() {
    let mut g = InMemoryGraph::new();
    for id in [1u64, 2, 3, 4] {
        g.add_vertex(Vertex::new(id, "N", Props::new()));
    }
    g.add_edge(Edge::new(1u64, "x", 2u64, Props::new()));
    g.add_edge(Edge::new(1u64, "x", 3u64, Props::new()));
    g.add_edge(Edge::new(2u64, "x", 4u64, Props::new().with("ok", true)));
    g.add_edge(Edge::new(3u64, "x", 4u64, Props::new().with("ok", false)));
    let q = GTravel::v([1u64])
        .e("x")
        .rtn()
        .e("x")
        .ea(PropFilter::eq("ok", true));
    let want = oracle::traverse(&g, &q.compile().unwrap());
    assert_eq!(want.by_depth[&1], [VertexId(2)].into());
    check_all_engines(&g, &q, 2, "filtered-diamond");
}

/// Self-loops: a vertex that links to itself is revisited every step.
#[test]
fn self_loop_revisits_across_steps() {
    let mut g = InMemoryGraph::new();
    g.add_vertex(Vertex::new(1u64, "N", Props::new()));
    g.add_vertex(Vertex::new(2u64, "N", Props::new()));
    g.add_edge(Edge::new(1u64, "x", 1u64, Props::new())); // self loop
    g.add_edge(Edge::new(1u64, "x", 2u64, Props::new()));
    let q = GTravel::v([1u64]).e("x").e("x").e("x");
    let want = oracle::traverse(&g, &q.compile().unwrap());
    assert_eq!(want.all_vertices(), vec![VertexId(1), VertexId(2)]);
    check_all_engines(&g, &q, 2, "selfloop");
}

/// Every step rtn()-marked in a long chain: tokens from many depths ride
/// the same path and must all be satisfied by the single completion.
#[test]
fn rtn_at_every_depth_of_a_chain() {
    let mut g = InMemoryGraph::new();
    for i in 0..6u64 {
        g.add_vertex(Vertex::new(i, "N", Props::new()));
        if i > 0 {
            g.add_edge(Edge::new(i - 1, "x", i, Props::new()));
        }
    }
    let q = GTravel::v([0u64])
        .rtn()
        .e("x")
        .rtn()
        .e("x")
        .rtn()
        .e("x")
        .rtn()
        .e("x")
        .rtn()
        .e("x")
        .rtn();
    let want = oracle::traverse(&g, &q.compile().unwrap());
    for d in 0..=5u16 {
        assert_eq!(want.by_depth[&d], [VertexId(d as u64)].into());
    }
    check_all_engines(&g, &q, 3, "rtn-chain");
}

/// A broken chain: rtn()-marked vertices past the break must not return.
#[test]
fn rtn_chain_broken_in_the_middle() {
    let mut g = InMemoryGraph::new();
    for i in 0..6u64 {
        g.add_vertex(Vertex::new(i, "N", Props::new()));
    }
    g.add_edge(Edge::new(0u64, "x", 1u64, Props::new()));
    g.add_edge(Edge::new(1u64, "x", 2u64, Props::new()));
    // no edge 2→3: the 4-step traversal dies at depth 2.
    let q = GTravel::v([0u64]).e("x").rtn().e("x").rtn().e("x").e("x");
    let want = oracle::traverse(&g, &q.compile().unwrap());
    assert!(want.by_depth[&1].is_empty());
    assert!(want.by_depth[&2].is_empty());
    check_all_engines(&g, &q, 2, "broken-chain");
}

#[test]
fn in_filter_and_float_range_on_engines() {
    let mut g = InMemoryGraph::new();
    for i in 0..20u64 {
        g.add_vertex(Vertex::new(
            i,
            "N",
            Props::new()
                .with("grp", format!("g{}", i % 4))
                .with("score", (i as f64) / 10.0),
        ));
    }
    for i in 0..19u64 {
        g.add_edge(Edge::new(i, "x", i + 1, Props::new()));
    }
    let q = GTravel::v((0..20u64).collect::<Vec<_>>())
        .e("x")
        .va(PropFilter::is_in(
            "grp",
            vec![PropValue::str("g1"), PropValue::str("g2")],
        ))
        .e("x")
        .va(PropFilter::range("score", 0.2f64, 1.4f64));
    check_all_engines(&g, &q, 3, "in-float");
}

/// Two traversals of the same plan but different travels must not share
/// traversal-affiliate cache state (triple includes the travel id).
#[test]
fn cache_is_travel_scoped() {
    let mut g = InMemoryGraph::new();
    for i in 0..30u64 {
        g.add_vertex(Vertex::new(i, "N", Props::new()));
        g.add_edge(Edge::new(i, "x", (i + 1) % 30, Props::new()));
        g.add_edge(Edge::new(i, "x", (i + 7) % 30, Props::new()));
    }
    let q = GTravel::v([0u64]).e("x").e("x").e("x").e("x");
    let dir = tmp("travel-scope");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let a = cluster.submit(&q).unwrap();
    let b = cluster.submit(&q).unwrap();
    assert_eq!(a.by_depth, b.by_depth, "second travel must see fresh cache");
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Aborting a travel that does not exist (or already finished) is benign,
/// and the cluster keeps serving afterwards.
#[test]
fn spurious_abort_is_harmless() {
    let mut g = InMemoryGraph::new();
    g.add_vertex(Vertex::new(1u64, "N", Props::new()));
    g.add_vertex(Vertex::new(2u64, "N", Props::new()));
    g.add_edge(Edge::new(1u64, "x", 2u64, Props::new()));
    let dir = tmp("abort");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let q = GTravel::v([1u64]).e("x");
    let r1 = cluster.submit(&q).unwrap();
    // submit_opts with 0 restarts after success leaves no state behind;
    // a later identical submit still works.
    let r2 = cluster.submit(&q).unwrap();
    assert_eq!(r1.by_depth, r2.by_depth);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Sync engine with a zero-step plan (pure source selection).
#[test]
fn zero_step_plan_on_all_engines() {
    let mut g = InMemoryGraph::new();
    for i in 0..12u64 {
        g.add_vertex(Vertex::new(
            i,
            if i % 3 == 0 { "File" } else { "Other" },
            Props::new(),
        ));
    }
    let q = GTravel::v_all().va(PropFilter::eq("type", "File"));
    check_all_engines(&g, &q, 3, "zerostep");
}
