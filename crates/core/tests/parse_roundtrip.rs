//! Round-trip property: any builder-made chain, rendered to the text
//! grammar by [`GTravel::render`] and parsed back by [`parse`], compiles
//! to the identical [`Plan`]. Covers both sources, every filter shape
//! (EQ / IN / RANGE over int, float, string, and bool values), edge and
//! vertex filters, `rtn()` at every position, `as_of`, and
//! `created_after` (which round-trips through its desugared stamp
//! filter).

use graphtrek::lang::GTravel;
use graphtrek::parse::parse;
use gt_graph::{PropFilter, PropValue};
use proptest::prelude::*;

const KEYS: [&str; 4] = ["w", "ts", "ftype", "start_ts"];
const LABELS: [&str; 4] = ["run", "read", "write", "link"];
const STRS: [&str; 4] = ["text", "h5", "csv", "bin"];

/// One property value; the u8 picks the variant, the payloads keep the
/// value grammar-representable (finite floats, no quotes in strings).
#[derive(Debug, Clone)]
struct ValueSpec {
    variant: u8,
    int: i64,
    float_millis: i64,
    s: u8,
    b: bool,
}

fn value_spec() -> impl Strategy<Value = ValueSpec> {
    (
        0u8..4,
        -1000i64..1000,
        -4000i64..4000,
        0u8..4,
        proptest::bool::weighted(0.5),
    )
        .prop_map(|(variant, int, float_millis, s, b)| ValueSpec {
            variant,
            int,
            float_millis,
            s,
            b,
        })
}

fn build_value(spec: &ValueSpec) -> PropValue {
    match spec.variant {
        0 => PropValue::Int(spec.int),
        1 => PropValue::Float(spec.float_millis as f64 / 8.0),
        2 => PropValue::Str(STRS[spec.s as usize].to_string()),
        _ => PropValue::Bool(spec.b),
    }
}

/// One filter: key index, condition shape, payload values.
#[derive(Debug, Clone)]
struct FilterSpec {
    key: u8,
    cond: u8,
    values: Vec<ValueSpec>,
}

fn filter_spec() -> impl Strategy<Value = FilterSpec> {
    (
        0u8..4,
        0u8..3,
        proptest::collection::vec(value_spec(), 1..4),
    )
        .prop_map(|(key, cond, values)| FilterSpec { key, cond, values })
}

fn build_filter(spec: &FilterSpec) -> PropFilter {
    let key = KEYS[spec.key as usize];
    match spec.cond {
        0 => PropFilter::eq(key, build_value(&spec.values[0])),
        1 => PropFilter::is_in(key, spec.values.iter().map(build_value).collect()),
        _ => {
            let lo = build_value(&spec.values[0]);
            let hi = build_value(spec.values.last().unwrap());
            PropFilter::range(key, lo, hi)
        }
    }
}

#[derive(Debug, Clone)]
struct StepSpec {
    label: u8,
    edge_filters: Vec<FilterSpec>,
    vertex_filters: Vec<FilterSpec>,
    rtn: bool,
    created_after: Option<u32>,
}

fn step_spec() -> impl Strategy<Value = StepSpec> {
    (
        0u8..4,
        proptest::collection::vec(filter_spec(), 0..3),
        proptest::collection::vec(filter_spec(), 0..3),
        proptest::bool::weighted(0.3),
        proptest::option::weighted(0.2, 0u32..1000),
    )
        .prop_map(
            |(label, edge_filters, vertex_filters, rtn, created_after)| StepSpec {
                label,
                edge_filters,
                vertex_filters,
                rtn,
                created_after,
            },
        )
}

#[derive(Debug, Clone)]
struct ChainSpec {
    all_source: bool,
    sources: Vec<u64>,
    source_filters: Vec<FilterSpec>,
    source_rtn: bool,
    source_created_after: Option<u32>,
    steps: Vec<StepSpec>,
    as_of: Option<u32>,
}

fn chain_spec() -> impl Strategy<Value = ChainSpec> {
    (
        proptest::bool::weighted(0.3),
        proptest::collection::vec(0u64..100, 1..6),
        proptest::collection::vec(filter_spec(), 0..3),
        proptest::bool::weighted(0.3),
        proptest::option::weighted(0.2, 0u32..1000),
        proptest::collection::vec(step_spec(), 0..5),
        proptest::option::weighted(0.3, 0u32..10_000),
    )
        .prop_map(
            |(
                all_source,
                sources,
                source_filters,
                source_rtn,
                source_created_after,
                steps,
                as_of,
            )| {
                ChainSpec {
                    all_source,
                    sources,
                    source_filters,
                    source_rtn,
                    source_created_after,
                    steps,
                    as_of,
                }
            },
        )
}

fn build_chain(spec: &ChainSpec) -> GTravel {
    let mut q = if spec.all_source {
        GTravel::v_all()
    } else {
        GTravel::v(spec.sources.clone())
    };
    for f in &spec.source_filters {
        q = q.va(build_filter(f));
    }
    if spec.source_rtn {
        q = q.rtn();
    }
    if let Some(seq) = spec.source_created_after {
        q = q.created_after(seq as u64);
    }
    for s in &spec.steps {
        q = q.e(LABELS[s.label as usize]);
        for f in &s.edge_filters {
            q = q.ea(build_filter(f));
        }
        for f in &s.vertex_filters {
            q = q.va(build_filter(f));
        }
        if s.rtn {
            q = q.rtn();
        }
        if let Some(seq) = s.created_after {
            q = q.created_after(seq as u64);
        }
    }
    if let Some(seq) = spec.as_of {
        q = q.as_of(seq as u64);
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// builder → render → parse → compile == builder → compile.
    #[test]
    fn render_parse_round_trips(spec in chain_spec()) {
        let q = build_chain(&spec);
        let text = q.render();
        let parsed = parse(&text)
            .unwrap_or_else(|e| panic!("render produced unparsable text `{text}`: {e}"));
        let want = q.compile().unwrap();
        let got = parsed.compile().unwrap();
        prop_assert_eq!(got, want, "round-trip diverged for `{}`", text);
    }

    /// Rendering is a fixpoint: parse(render(q)).render() == render(q).
    #[test]
    fn render_is_canonical(spec in chain_spec()) {
        let q = build_chain(&spec);
        let text = q.render();
        let again = parse(&text).unwrap().render();
        prop_assert_eq!(again, text);
    }
}

#[test]
fn render_covers_the_readme_examples() {
    let q = GTravel::v([7u64])
        .e("run")
        .ea(PropFilter::range("start_ts", 0i64, 1000i64))
        .e("read")
        .va(PropFilter::eq("ftype", "text"))
        .rtn();
    assert_eq!(
        q.render(),
        "v(7).e('run').ea('start_ts', RANGE, 0, 1000).e('read').va('ftype', EQ, 'text').rtn()"
    );
    let all = GTravel::v_all()
        .va(PropFilter::eq("type", "Execution"))
        .rtn()
        .as_of(42);
    assert_eq!(
        all.render(),
        "v().va('type', EQ, 'Execution').rtn().as_of(42)"
    );
    // Both parse back to the same plan.
    for q in [q, all] {
        assert_eq!(
            parse(&q.render()).unwrap().compile().unwrap(),
            q.compile().unwrap()
        );
    }
}
