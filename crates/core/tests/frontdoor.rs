//! Front-door suite: the socket transport under the whole engine, and
//! the proto listener with per-tenant QoS.
//!
//! The transport tests run ordinary clusters with every message crossing
//! a real TCP/UDS socket through the binary wire codec and require
//! results identical to the in-process oracle on all three engines. The
//! QoS tests drive the [`graphtrek::frontdoor::FrontDoor`] through raw
//! proto connections: weighted fairness under saturation, rate-limit
//! isolation, disconnect-driven retirement, and the all-zeroes guarantee
//! when QoS is off.

use graphtrek::cluster::{Cluster, ClusterConfig};
use graphtrek::engine::{EngineConfig, EngineKind, TransportKind};
use graphtrek::frontdoor::FrontDoor;
use graphtrek::oracle;
use graphtrek::prelude::*;
use graphtrek::qos::QosConfig;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex, VertexId};
use gt_proto::{
    read_frame, send_client, ClientMsg, ServerMsg, SubmitOpts, WireError, PROTOCOL_VERSION,
};
use gt_transport::SocketAddrSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-frontdoor-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Random layered metadata-ish graph (the equivalence suite's shape).
fn random_graph(seed: u64, n: u64) -> InMemoryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = InMemoryGraph::new();
    let types = ["User", "Execution", "File"];
    let labels = ["run", "read", "write", "link"];
    for i in 0..n {
        let t = types[rng.gen_range(0..types.len())];
        g.add_vertex(Vertex::new(
            i,
            t,
            Props::new().with("w", rng.gen_range(0..10) as i64),
        ));
    }
    for _ in 0..n * 4 {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let label = labels[rng.gen_range(0..labels.len())];
        g.add_edge(Edge::new(
            src,
            label,
            dst,
            Props::new().with("ts", rng.gen_range(0..100) as i64),
        ));
    }
    g
}

fn queries() -> Vec<GTravel> {
    vec![
        GTravel::v([0u64, 1, 2, 3]).e("run").e("read"),
        GTravel::v([0u64, 5, 9, 13])
            .e("link")
            .rtn()
            .e("read")
            .va(PropFilter::range("w", 0i64, 7i64))
            .e("link"),
        GTravel::v([2u64, 4, 6, 8])
            .e("write")
            .ea(PropFilter::range("ts", 10i64, 90i64))
            .e("link")
            .e("run"),
    ]
}

fn expected(g: &InMemoryGraph, q: &GTravel) -> Vec<VertexId> {
    oracle::traverse(g, &q.compile().unwrap()).all_vertices()
}

// ----------------------------------------------------- socket transport

/// Every cluster message crossing a real socket (TCP and UDS) through
/// the wire codec must leave the results of all three engines identical
/// to the oracle.
#[test]
fn socket_transport_matches_inproc_oracle_on_all_engines() {
    let g = random_graph(0x50C7, 120);
    for transport in [TransportKind::Tcp, TransportKind::Uds] {
        for kind in EngineKind::all() {
            let dir = tmp(&format!("sock-{}-{}", transport.label(), kind.label()));
            let cluster = Cluster::build(
                &g,
                ClusterConfig::new(&dir, 3),
                EngineConfig::new(kind).transport(transport),
            )
            .unwrap();
            for q in queries() {
                let r = cluster.submit(&q).unwrap();
                assert_eq!(
                    r.vertices,
                    expected(&g, &q),
                    "{} over {} diverged from oracle",
                    kind.label(),
                    transport.label()
                );
            }
            cluster.shutdown();
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Chaos schedules have no socket-side injector; asking for both is a
/// build-time error, not a silently chaos-free run.
#[test]
fn chaos_plus_socket_transport_is_rejected() {
    let g = random_graph(1, 40);
    let dir = tmp("chaos-sock");
    let err = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek)
            .transport(TransportKind::Tcp)
            .chaos(graphtrek::faults::ChaosPlan::lossy(7)),
    )
    .map(|c| c.shutdown())
    .unwrap_err();
    assert!(
        err.to_string().contains("in-process transport"),
        "got: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------------ proto door

/// A raw proto connection for tests: hello done, requests correlated.
struct TestClient {
    sock: TcpStream,
    next_id: u64,
    /// Out-of-order terminal responses parked until asked for.
    parked: std::collections::HashMap<u64, ServerMsg>,
}

impl TestClient {
    fn connect(addr: &SocketAddrSpec, tenant: &str) -> TestClient {
        let SocketAddrSpec::Tcp(addr) = addr else {
            panic!("test client only dials tcp");
        };
        let mut sock = TcpStream::connect(addr).unwrap();
        send_client(
            &mut sock,
            &ClientMsg::Hello {
                version: PROTOCOL_VERSION,
                tenant: tenant.into(),
            },
        )
        .unwrap();
        let frame = read_frame(&mut sock).unwrap().expect("hello reply");
        match ServerMsg::decode(&frame).unwrap() {
            ServerMsg::HelloAck { version } => assert_eq!(version, PROTOCOL_VERSION),
            other => panic!("expected HelloAck, got {other:?}"),
        }
        TestClient {
            sock,
            next_id: 1,
            parked: std::collections::HashMap::new(),
        }
    }

    fn submit(&mut self, gtravel: &str, opts: SubmitOpts) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        send_client(
            &mut self.sock,
            &ClientMsg::Submit {
                id,
                gtravel: gtravel.into(),
                opts,
            },
        )
        .unwrap();
        id
    }

    /// Read frames until the response for `id` arrives; terminal
    /// responses for other pipelined requests are parked, not dropped.
    fn response_for(&mut self, id: u64) -> ServerMsg {
        if let Some(msg) = self.parked.remove(&id) {
            return msg;
        }
        loop {
            let frame = read_frame(&mut self.sock).unwrap().expect("response");
            let msg = ServerMsg::decode(&frame).unwrap();
            match &msg {
                ServerMsg::Result { id: got, .. } | ServerMsg::Error { id: got, .. } => {
                    if *got == id {
                        return msg;
                    }
                    self.parked.insert(*got, msg);
                }
                // Unsolicited progress/handshake frames: drop.
                ServerMsg::Progress { .. }
                | ServerMsg::HelloAck { .. }
                | ServerMsg::Unsupported { .. }
                | ServerMsg::MetricsReport { .. } => {}
            }
        }
    }

    fn run(&mut self, gtravel: &str) -> Result<Vec<u64>, WireError> {
        let id = self.submit(gtravel, SubmitOpts::default());
        match self.response_for(id) {
            ServerMsg::Result { by_depth, .. } => {
                let mut all: Vec<u64> = by_depth.into_iter().flat_map(|(_, vs)| vs).collect();
                all.sort_unstable();
                all.dedup();
                Ok(all)
            }
            ServerMsg::Error { error, .. } => Err(error),
            other => panic!("unexpected response {other:?}"),
        }
    }

    fn goodbye(mut self) {
        let _ = send_client(&mut self.sock, &ClientMsg::Goodbye);
    }
}

/// End-to-end: text query in over the proto socket, results out, equal
/// to the oracle on all three engines.
#[test]
fn proto_door_matches_oracle_on_all_engines() {
    let g = random_graph(0xD00F, 100);
    let texts = [
        "v(0,1,2,3).e('run').e('read')",
        "v(0,5,9,13).e('link').rtn().e('read').va('w', RANGE, 0, 7).e('link')",
        "v(2,4,6,8).e('write').ea('ts', RANGE, 10, 90).e('link').e('run')",
    ];
    for kind in EngineKind::all() {
        let dir = tmp(&format!("door-{}", kind.label()));
        let cluster =
            Cluster::build(&g, ClusterConfig::new(&dir, 3), EngineConfig::new(kind)).unwrap();
        let door = FrontDoor::serve(
            cluster.handle(),
            SocketAddrSpec::Tcp("127.0.0.1:0".into()),
            QosConfig::default(),
        )
        .unwrap();
        let mut client = TestClient::connect(door.local_addr(), "t");
        for text in texts {
            let got = client.run(text).unwrap();
            let q = graphtrek::parse::parse(text).unwrap();
            let want: Vec<u64> = expected(&g, &q).into_iter().map(|v| v.0).collect();
            assert_eq!(got, want, "{} diverged via proto door", kind.label());
        }
        // A bad query is a typed error, not a dropped connection.
        let err = client.run("v(0).e('run').nonsense()").unwrap_err();
        assert!(matches!(err, WireError::Query(_)), "got {err:?}");
        client.goodbye();
        door.stop();
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// With QoS off, nothing is counted — exactly zero, not merely small.
#[test]
fn qos_counters_stay_zero_when_disabled() {
    let g = random_graph(3, 60);
    let dir = tmp("qos-off");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let door = FrontDoor::serve(
        cluster.handle(),
        SocketAddrSpec::Tcp("127.0.0.1:0".into()),
        QosConfig::default(),
    )
    .unwrap();
    let mut client = TestClient::connect(door.local_addr(), "anyone");
    for _ in 0..5 {
        client.run("v(0,1,2).e('link')").unwrap();
    }
    // Metrics over the wire: no per-tenant counters exist at all.
    send_client(&mut client.sock, &ClientMsg::Metrics).unwrap();
    let frame = read_frame(&mut client.sock).unwrap().unwrap();
    match ServerMsg::decode(&frame).unwrap() {
        ServerMsg::MetricsReport { counters } => {
            assert!(counters.is_empty(), "expected no counters: {counters:?}")
        }
        other => panic!("expected MetricsReport, got {other:?}"),
    }
    assert!(door.gate().all_counters().is_empty());
    client.goodbye();
    door.stop();
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A rate-limited tenant is refused with a retry hint; an unlimited
/// tenant sharing the door sees every one of its requests admitted.
#[test]
fn rate_limited_tenant_throttles_without_perturbing_others() {
    let g = random_graph(5, 60);
    let dir = tmp("qos-rate");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    // 2-token bucket, glacial refill: the third request must throttle.
    let door = FrontDoor::serve(
        cluster.handle(),
        SocketAddrSpec::Tcp("127.0.0.1:0".into()),
        QosConfig::enabled().rate("capped", 2.0, 0.01),
    )
    .unwrap();
    let mut capped = TestClient::connect(door.local_addr(), "capped");
    let mut free = TestClient::connect(door.local_addr(), "free");
    let mut throttled = 0u32;
    for _ in 0..6 {
        match capped.run("v(0,1).e('link')") {
            Ok(_) => {}
            Err(WireError::Throttled { retry_after_ms }) => {
                assert!(retry_after_ms > 0);
                throttled += 1;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert_eq!(throttled, 4, "2-token bucket admits exactly 2 of 6");
    for _ in 0..6 {
        free.run("v(0,1).e('link')").unwrap();
    }
    let c = door.gate().counters("capped");
    assert_eq!((c.admitted, c.throttled), (2, 4));
    let f = door.gate().counters("free");
    assert_eq!((f.admitted, f.throttled), (6, 0));
    capped.goodbye();
    free.goodbye();
    door.stop();
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Killing a connection retires its in-flight travels: the cluster's
/// active-travel count returns to zero without anyone calling wait.
#[test]
fn killed_connection_retires_inflight_travels() {
    let g = random_graph(7, 80);
    let dir = tmp("qos-kill");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        // Slow every server down so the travels are still in flight
        // when the connection dies.
        EngineConfig::new(EngineKind::GraphTrek).faults(
            graphtrek::faults::FaultPlan::round_robin_stragglers(
                &[0, 1],
                8,
                Duration::from_millis(40),
                1000,
            ),
        ),
    )
    .unwrap();
    let state = cluster.handle();
    let door = FrontDoor::serve(
        cluster.handle(),
        SocketAddrSpec::Tcp("127.0.0.1:0".into()),
        QosConfig::enabled(),
    )
    .unwrap();
    let mut client = TestClient::connect(door.local_addr(), "doomed");
    for _ in 0..3 {
        client.submit(
            "v(0,1,2,3,4,5).e('link').e('link').e('link')",
            SubmitOpts::default(),
        );
    }
    // Give the door a moment to dispatch, then kill the socket abruptly.
    std::thread::sleep(Duration::from_millis(100));
    client.sock.shutdown(std::net::Shutdown::Both).unwrap();
    drop(client);
    // The disconnect handler cancels every in-flight travel.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let c = door.gate().counters("doomed");
        if c.cancelled_on_disconnect + c.completed + c.deadline_missed >= c.admitted
            && c.admitted > 0
            && state.active_travels() == 0
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "in-flight travels not retired: {:?}, active={}",
            door.gate().counters("doomed"),
            state.active_travels()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let c = door.gate().counters("doomed");
    assert!(
        c.cancelled_on_disconnect > 0,
        "expected disconnect-driven cancellations, got {c:?}"
    );
    door.stop();
    drop(state);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Deadlines map onto the engine's timeout machinery: a request with a
/// hopeless deadline fails with `WireError::Timeout` and is counted.
#[test]
fn missed_deadline_surfaces_as_timeout() {
    let g = random_graph(9, 80);
    let dir = tmp("qos-deadline");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        EngineConfig::new(EngineKind::GraphTrek)
            .faults(graphtrek::faults::FaultPlan::round_robin_stragglers(
                &[0, 1],
                8,
                Duration::from_millis(50),
                1000,
            ))
            // Tight poll slice so a millisecond-scale deadline is
            // enforced at millisecond granularity.
            .wait_poll(Duration::from_millis(1)),
    )
    .unwrap();
    let door = FrontDoor::serve(
        cluster.handle(),
        SocketAddrSpec::Tcp("127.0.0.1:0".into()),
        QosConfig::enabled(),
    )
    .unwrap();
    let mut client = TestClient::connect(door.local_addr(), "hasty");
    let id = client.submit(
        "v(0,1,2,3,4,5).e('link').e('link').e('link')",
        SubmitOpts {
            deadline_ms: Some(1),
        },
    );
    match client.response_for(id) {
        ServerMsg::Error {
            error: WireError::Timeout { .. },
            ..
        } => {}
        other => panic!("expected timeout, got {other:?}"),
    }
    let state = cluster.handle();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while state.active_travels() != 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "timed-out travel not retired"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(door.gate().counters("hasty").deadline_missed, 1);
    client.goodbye();
    door.stop();
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// 4:1 tenant weights ⇒ ~4:1 admitted work under saturation. Both
/// tenants keep a full pipeline of identical travels against a saturated
/// single-worker cluster; the weighted-fair merging queue must complete
/// gold's travels roughly four times as often as bronze's.
#[test]
fn tenant_weights_shape_throughput_under_saturation() {
    let g = random_graph(11, 140);
    let dir = tmp("qos-weights");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        // One worker per server plus a per-access straggler delay makes
        // worker time the bottleneck, so the weighted merging queue —
        // not network latency — decides who gets served.
        EngineConfig::new(EngineKind::GraphTrek).workers(1).faults(
            graphtrek::faults::FaultPlan::round_robin_stragglers(
                &[0, 1],
                8,
                Duration::from_millis(2),
                1_000_000,
            ),
        ),
    )
    .unwrap();
    let door = FrontDoor::serve(
        cluster.handle(),
        SocketAddrSpec::Tcp("127.0.0.1:0".into()),
        QosConfig::enabled().weight("gold", 4).weight("bronze", 1),
    )
    .unwrap();
    let addr = door.local_addr().clone();
    let stop = Arc::new(AtomicBool::new(false));
    let gold_done = Arc::new(AtomicU64::new(0));
    let bronze_done = Arc::new(AtomicU64::new(0));
    let query = "v(0,1,2,3,4,5,6,7).e('link').e('link').e('read').e('link')";
    std::thread::scope(|s| {
        for (tenant, done) in [("gold", &gold_done), ("bronze", &bronze_done)] {
            let stop = stop.clone();
            let addr = addr.clone();
            s.spawn(move || {
                let mut client = TestClient::connect(&addr, tenant);
                // Keep a deep pipeline so both tenants stay backlogged
                // — weighted fairness only shows under sustained choice.
                let mut inflight: std::collections::VecDeque<u64> = (0..16)
                    .map(|_| client.submit(query, SubmitOpts::default()))
                    .collect();
                while !stop.load(Ordering::Relaxed) {
                    let id = inflight.pop_front().unwrap();
                    match client.response_for(id) {
                        ServerMsg::Result { .. } => {
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("worker saw {other:?}"),
                    }
                    inflight.push_back(client.submit(query, SubmitOpts::default()));
                }
                for id in inflight {
                    let _ = client.response_for(id);
                }
                client.goodbye();
            });
        }
        std::thread::sleep(Duration::from_secs(3));
        stop.store(true, Ordering::Relaxed);
    });
    let gold = gold_done.load(Ordering::Relaxed) as f64;
    let bronze = bronze_done.load(Ordering::Relaxed) as f64;
    assert!(
        gold >= 20.0 && bronze >= 1.0,
        "not saturated enough to judge: gold={gold} bronze={bronze}"
    );
    let ratio = gold / bronze;
    assert!(
        (2.0..=8.0).contains(&ratio),
        "4:1 weights should yield ~4:1 throughput, got {ratio:.2} (gold={gold} bronze={bronze})"
    );
    door.stop();
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The same weighted run with QoS disabled must stay ~1:1 — the ratio in
/// the weighted test above comes from the gate, not tenant luck.
#[test]
fn equal_tenants_split_evenly_without_qos() {
    let g = random_graph(11, 140);
    let dir = tmp("qos-even");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 2),
        // Same saturated setup as the weighted test — the control run.
        EngineConfig::new(EngineKind::GraphTrek).workers(1).faults(
            graphtrek::faults::FaultPlan::round_robin_stragglers(
                &[0, 1],
                8,
                Duration::from_millis(2),
                1_000_000,
            ),
        ),
    )
    .unwrap();
    let door = FrontDoor::serve(
        cluster.handle(),
        SocketAddrSpec::Tcp("127.0.0.1:0".into()),
        QosConfig::default(),
    )
    .unwrap();
    let addr = door.local_addr().clone();
    let stop = Arc::new(AtomicBool::new(false));
    let a_done = Arc::new(AtomicU64::new(0));
    let b_done = Arc::new(AtomicU64::new(0));
    let query = "v(0,1,2,3,4,5,6,7).e('link').e('link').e('read').e('link')";
    std::thread::scope(|s| {
        for (tenant, done) in [("a", &a_done), ("b", &b_done)] {
            let stop = stop.clone();
            let addr = addr.clone();
            s.spawn(move || {
                let mut client = TestClient::connect(&addr, tenant);
                let mut inflight: std::collections::VecDeque<u64> = (0..16)
                    .map(|_| client.submit(query, SubmitOpts::default()))
                    .collect();
                while !stop.load(Ordering::Relaxed) {
                    let id = inflight.pop_front().unwrap();
                    match client.response_for(id) {
                        ServerMsg::Result { .. } => {
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("worker saw {other:?}"),
                    }
                    inflight.push_back(client.submit(query, SubmitOpts::default()));
                }
                for id in inflight {
                    let _ = client.response_for(id);
                }
                client.goodbye();
            });
        }
        std::thread::sleep(Duration::from_secs(2));
        stop.store(true, Ordering::Relaxed);
    });
    let a = a_done.load(Ordering::Relaxed) as f64;
    let b = b_done.load(Ordering::Relaxed) as f64;
    assert!(a >= 10.0 && b >= 10.0, "not saturated: a={a} b={b}");
    let ratio = a.max(b) / a.min(b);
    assert!(
        ratio <= 1.8,
        "equal tenants should split ~evenly, got {ratio:.2} (a={a} b={b})"
    );
    door.stop();
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The merging-queue weight multiplier is dormant at its default: plans
/// compiled anywhere get weight 1, so clusters without a QoS gate are
/// byte-identical to the pre-QoS engine.
#[test]
fn default_plans_carry_neutral_weight() {
    let plan = GTravel::v([1u64]).e("run").compile().unwrap();
    assert_eq!(plan.qos_weight, 1);
}
