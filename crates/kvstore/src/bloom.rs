//! Split-block Bloom filter for segment files.
//!
//! Each on-disk segment carries a Bloom filter over its keys so that point
//! lookups can skip segments that cannot contain the key — the standard
//! LSM read-amplification defence (RocksDB does the same). The filter is
//! serialized into the segment and loaded into memory at open time.

/// A classic k-hash Bloom filter over byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    n_hashes: u32,
}

/// 64-bit FNV-1a, the base hash the filter derives its k probes from.
fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl BloomFilter {
    /// Build an empty filter sized for `n_keys` keys at `bits_per_key`.
    pub fn new(n_keys: usize, bits_per_key: usize) -> Self {
        let n_bits = (n_keys.max(1) * bits_per_key.max(1)).max(64) as u64;
        let n_words = n_bits.div_ceil(64) as usize;
        // k = ln(2) * bits/key, clamped to a sane range.
        let n_hashes = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 12);
        BloomFilter {
            bits: vec![0u64; n_words],
            n_bits: n_words as u64 * 64,
            n_hashes,
        }
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = self.base_hashes(key);
        for i in 0..self.n_hashes {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.n_bits;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// Whether the key may be present (false positives possible, false
    /// negatives impossible).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = self.base_hashes(key);
        for i in 0..self.n_hashes {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.n_bits;
            if self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    fn base_hashes(&self, key: &[u8]) -> (u64, u64) {
        (fnv1a(key, 0x51ED), fnv1a(key, 0xC0FFEE) | 1)
    }

    /// Serialize to bytes (word-aligned little endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(&(self.n_hashes).to_le_bytes());
        out.extend_from_slice(&(self.bits.len() as u64).to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`BloomFilter::encode`] output.
    pub fn decode(data: &[u8]) -> Option<Self> {
        if data.len() < 12 {
            return None;
        }
        let n_hashes = u32::from_le_bytes(data[0..4].try_into().ok()?);
        let n_words = u64::from_le_bytes(data[4..12].try_into().ok()?) as usize;
        if data.len() < 12 + n_words * 8 || n_hashes == 0 {
            return None;
        }
        let mut bits = Vec::with_capacity(n_words);
        for i in 0..n_words {
            let off = 12 + i * 8;
            bits.push(u64::from_le_bytes(data[off..off + 8].try_into().ok()?));
        }
        Some(BloomFilter {
            n_bits: n_words as u64 * 64,
            bits,
            n_hashes,
        })
    }

    /// Number of bits in the filter (diagnostics).
    pub fn n_bits(&self) -> u64 {
        self.n_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 10);
        let keys: Vec<Vec<u8>> = (0..1000u32)
            .map(|i| format!("key-{i}").into_bytes())
            .collect();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.may_contain(k), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000u32 {
            f.insert(format!("key-{i}").as_bytes());
        }
        let fp = (0..10_000u32)
            .filter(|i| f.may_contain(format!("absent-{i}").as_bytes()))
            .count();
        // 10 bits/key gives ~1% theoretical FP rate; allow generous slack.
        assert!(fp < 500, "false positive rate too high: {fp}/10000");
    }

    #[test]
    fn roundtrip_encode_decode() {
        let mut f = BloomFilter::new(100, 8);
        for i in 0..100u32 {
            f.insert(&i.to_le_bytes());
        }
        let enc = f.encode();
        let g = BloomFilter::decode(&enc).expect("decode");
        assert_eq!(f, g);
        for i in 0..100u32 {
            assert!(g.may_contain(&i.to_le_bytes()));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(&[]).is_none());
        assert!(BloomFilter::decode(&[1, 2, 3]).is_none());
        // Claims more words than the buffer holds.
        let mut bad = Vec::new();
        bad.extend_from_slice(&4u32.to_le_bytes());
        bad.extend_from_slice(&1000u64.to_le_bytes());
        assert!(BloomFilter::decode(&bad).is_none());
    }

    #[test]
    fn empty_filter_contains_nothing_inserted() {
        let f = BloomFilter::new(10, 10);
        // An empty filter has all-zero bits, so nothing may be contained.
        assert!(!f.may_contain(b"anything"));
    }
}
