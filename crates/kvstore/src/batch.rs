//! Atomic write batches.
//!
//! A [`WriteBatch`] groups puts and deletes so they hit the WAL as a single
//! CRC-protected record: either every operation in the batch survives a
//! crash or none does. The graph layer uses batches to keep a vertex and
//! its adjacent edge records consistent when loading partitions.

use bytes::Bytes;

/// One operation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert or overwrite `key` with `value`.
    Put {
        /// Key to write.
        key: Vec<u8>,
        /// Value to associate.
        value: Bytes,
    },
    /// Remove `key` (writes a tombstone).
    Delete {
        /// Key to remove.
        key: Vec<u8>,
    },
}

/// An ordered collection of operations applied atomically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
}

impl WriteBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a batch with preallocated capacity for `n` operations.
    pub fn with_capacity(n: usize) -> Self {
        WriteBatch {
            ops: Vec::with_capacity(n),
        }
    }

    /// Append a put operation.
    pub fn put(&mut self, key: impl Into<Vec<u8>>, value: impl Into<Bytes>) -> &mut Self {
        self.ops.push(BatchOp::Put {
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Append a delete operation.
    pub fn delete(&mut self, key: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push(BatchOp::Delete { key: key.into() });
        self
    }

    /// Number of operations queued.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate over the operations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &BatchOp> {
        self.ops.iter()
    }

    /// Consume the batch, yielding its operations.
    pub fn into_ops(self) -> Vec<BatchOp> {
        self.ops
    }

    /// Approximate encoded size, used for memtable accounting.
    pub fn encoded_size(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                BatchOp::Put { key, value } => key.len() + value.len() + 16,
                BatchOp::Delete { key } => key.len() + 16,
            })
            .sum()
    }
}

impl IntoIterator for WriteBatch {
    type Item = BatchOp;
    type IntoIter = std::vec::IntoIter<BatchOp>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_preserves_order() {
        let mut b = WriteBatch::new();
        b.put(b"a".to_vec(), Bytes::from_static(b"1"))
            .delete(b"a".to_vec())
            .put(b"b".to_vec(), Bytes::from_static(b"2"));
        assert_eq!(b.len(), 3);
        let ops = b.into_ops();
        assert!(matches!(&ops[0], BatchOp::Put { key, .. } if key == b"a"));
        assert!(matches!(&ops[1], BatchOp::Delete { key } if key == b"a"));
        assert!(matches!(&ops[2], BatchOp::Put { key, .. } if key == b"b"));
    }

    #[test]
    fn encoded_size_counts_everything() {
        let mut b = WriteBatch::new();
        assert!(b.is_empty());
        b.put(b"key".to_vec(), Bytes::from_static(b"value"));
        b.delete(b"key2".to_vec());
        assert_eq!(b.encoded_size(), 3 + 5 + 16 + 4 + 16);
    }
}
