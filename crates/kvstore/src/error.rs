//! Error type shared by every store component.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the key-value store.
#[derive(Debug)]
pub enum Error {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A WAL or segment record failed its CRC check or was truncated.
    Corruption {
        /// Which file was found corrupted.
        file: String,
        /// Human-readable description of the corruption.
        detail: String,
    },
    /// A namespace name contained characters unusable as a directory name.
    InvalidNamespace(String),
    /// The store was already closed (e.g. a handle outlived shutdown).
    Closed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Corruption { file, detail } => {
                write!(f, "corruption in {file}: {detail}")
            }
            Error::InvalidNamespace(name) => write!(f, "invalid namespace name: {name:?}"),
            Error::Closed => write!(f, "store is closed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Shorthand constructor for corruption errors.
    pub fn corruption(file: impl Into<String>, detail: impl Into<String>) -> Self {
        Error::Corruption {
            file: file.into(),
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::corruption("wal.log", "bad crc");
        assert_eq!(e.to_string(), "corruption in wal.log: bad crc");
        let e = Error::InvalidNamespace("a/b".into());
        assert!(e.to_string().contains("a/b"));
    }

    #[test]
    fn io_error_source_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
