//! Block (run) cache shared by every namespace of a store.
//!
//! Caches decoded entry runs keyed by `(tree_tag, segment_id, slot)` —
//! segment numbering restarts in every tree, so the tree tag is what keeps
//! two namespaces' `seg-1` files from aliasing each other. A hit turns a
//! cold disk access into a warm memory access — the substrate analogue of
//! RocksDB's block cache. Capacity is bounded in number of runs; eviction
//! is LRU, amortized by evicting a batch of the stalest entries when full.

use crate::segment::Run;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug)]
struct Entry {
    run: Run,
    last_use: u64,
}

/// A bounded LRU cache of decoded segment runs.
#[derive(Debug)]
pub struct BlockCache {
    map: Mutex<HashMap<(u64, u64, u64), Entry>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BlockCache {
    /// Create a cache holding at most `capacity` runs. A capacity of zero
    /// disables caching entirely (every access is cold), which is how the
    /// benchmark harness forces the paper's cold-start condition.
    pub fn new(capacity: usize) -> Self {
        BlockCache {
            map: Mutex::new(HashMap::with_capacity(capacity.min(4096))),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a run, refreshing its recency on hit. `tree` is the
    /// owning tree's unique tag: segment numbering restarts per tree, so
    /// the tag keeps namespaces from colliding in the shared cache.
    pub fn get(&self, tree: u64, segment: u64, slot: u64) -> Option<Run> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock();
        match map.get_mut(&(tree, segment, slot)) {
            Some(e) => {
                e.last_use = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.run.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a run, evicting the stalest entries if over capacity.
    pub fn insert(&self, tree: u64, segment: u64, slot: u64, run: Run) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock();
        map.insert(
            (tree, segment, slot),
            Entry {
                run,
                last_use: stamp,
            },
        );
        if map.len() > self.capacity {
            // Amortized LRU: drop the oldest ~1/8 of the cache at once.
            let evict = (self.capacity / 8).max(1);
            let mut stamps: Vec<(u64, (u64, u64, u64))> =
                map.iter().map(|(k, e)| (e.last_use, *k)).collect();
            stamps.sort_unstable();
            for (_, key) in stamps.into_iter().take(evict) {
                map.remove(&key);
            }
        }
    }

    /// Drop every cached run belonging to `segment` of `tree` (after
    /// compaction).
    pub fn invalidate_segment(&self, tree: u64, segment: u64) {
        self.map
            .lock()
            .retain(|(t, seg, _), _| !(*t == tree && *seg == segment));
    }

    /// Drop everything (e.g. to force a cold start between experiments).
    pub fn clear(&self) {
        self.map.lock().clear();
    }

    /// Number of cached runs.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// True when no runs are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) counters since creation.
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn run(tag: u8) -> Run {
        Arc::new(vec![(vec![tag], None)])
    }

    #[test]
    fn insert_get_roundtrip() {
        let c = BlockCache::new(8);
        assert!(c.get(0, 1, 0).is_none());
        c.insert(0, 1, 0, run(7));
        let got = c.get(0, 1, 0).expect("hit");
        assert_eq!(got[0].0, vec![7]);
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let c = BlockCache::new(0);
        c.insert(0, 1, 0, run(1));
        assert!(c.get(0, 1, 0).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_prefers_stale_entries() {
        let c = BlockCache::new(16);
        for i in 0..16u64 {
            c.insert(0, 1, i, run(i as u8));
        }
        // Touch entry 0 so it is fresh.
        assert!(c.get(0, 1, 0).is_some());
        // Overflow triggers eviction of the oldest batch (entries 1, 2).
        c.insert(0, 1, 100, run(0xFF));
        assert!(c.len() <= 16);
        assert!(c.get(0, 1, 0).is_some(), "recently used entry survived");
        assert!(c.get(0, 1, 100).is_some(), "new entry survived");
        assert!(c.get(0, 1, 1).is_none(), "stalest entry evicted");
    }

    #[test]
    fn invalidate_segment_is_selective() {
        let c = BlockCache::new(8);
        c.insert(0, 1, 0, run(1));
        c.insert(0, 2, 0, run(2));
        c.insert(9, 1, 0, run(3));
        c.invalidate_segment(0, 1);
        assert!(c.get(0, 1, 0).is_none());
        assert!(c.get(0, 2, 0).is_some());
        assert!(c.get(9, 1, 0).is_some(), "other tree's segment 1 survives");
    }

    #[test]
    fn clear_empties() {
        let c = BlockCache::new(8);
        c.insert(0, 1, 0, run(1));
        c.clear();
        assert!(c.is_empty());
    }
}
