//! MVCC version machinery: sequence-number key suffixing, the shared
//! version clock, and the live-view pin registry.
//!
//! When a store is opened with a version clock, every write is stamped
//! with a monotonic sequence number by appending `(!seq)` big-endian to
//! the user key (RocksDB-style internal keys, inverted so that versions
//! of one user key sort newest-first). Reads then resolve against a
//! [`ReadView`]: the newest version with `seq <= view` wins, and a
//! tombstone version hides the key. Pinning a view in the
//! [`VersionState`] registry keeps compaction from dropping any version
//! the view can still observe.
//!
//! With no clock configured (the default) none of this exists on the
//! write or read path — keys are stored raw and every counter in
//! [`VersionStats`] stays exactly zero.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes appended to a user key to form a versioned internal key.
pub const SUFFIX_LEN: usize = 8;

/// A consistent point-in-time read bound: versions with `seq <= seq`
/// are visible, anything newer is ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReadView {
    /// Highest visible sequence number.
    pub seq: u64,
}

impl ReadView {
    /// A view that sees every committed version (latest-read).
    pub const LATEST: ReadView = ReadView { seq: u64::MAX };

    /// A view bounded at `seq`.
    pub fn at(seq: u64) -> ReadView {
        ReadView { seq }
    }
}

/// Append the inverted big-endian sequence suffix to `key`.
pub fn suffix_key(key: &mut Vec<u8>, seq: u64) {
    key.extend_from_slice(&(!seq).to_be_bytes());
}

/// Split a versioned internal key into `(user_key, seq)`.
///
/// Returns `None` for keys shorter than the suffix; under the
/// versioned-write discipline every stored key carries a suffix, so
/// `None` only appears on malformed input.
pub fn split_suffixed(key: &[u8]) -> Option<(&[u8], u64)> {
    if key.len() < SUFFIX_LEN {
        return None;
    }
    let (ukey, tail) = key.split_at(key.len() - SUFFIX_LEN);
    let raw: [u8; SUFFIX_LEN] = tail.try_into().ok()?;
    Some((ukey, !u64::from_be_bytes(raw)))
}

/// Monotonic counters describing the versioning machinery's activity.
/// All zero while versioning is disabled (the dormancy contract).
#[derive(Debug, Default)]
pub struct VersionStats {
    /// Read views pinned over the store's lifetime.
    pub views_pinned: AtomicU64,
    /// High-water mark of simultaneously pinned views.
    pub view_pin_peak: AtomicU64,
    /// Versioned reads that skipped at least one version newer than the
    /// read view (the isolation machinery actually mattered).
    pub stale_seq_reads: AtomicU64,
    /// Compactions deferred because a pinned view could still observe a
    /// version the merge would have dropped.
    pub compactions_deferred: AtomicU64,
}

/// Plain-value copy of [`VersionStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionStatsSnapshot {
    /// See [`VersionStats::views_pinned`].
    pub views_pinned: u64,
    /// See [`VersionStats::view_pin_peak`].
    pub view_pin_peak: u64,
    /// See [`VersionStats::stale_seq_reads`].
    pub stale_seq_reads: u64,
    /// See [`VersionStats::compactions_deferred`].
    pub compactions_deferred: u64,
}

/// Shared versioning state of one store: the (possibly cluster-global)
/// sequence clock, the pinned-view registry, and activity counters.
#[derive(Debug)]
pub struct VersionState {
    clock: Arc<AtomicU64>,
    /// seq → number of pins at that seq.
    pins: Mutex<BTreeMap<u64, u64>>,
    /// Counters (see [`VersionStats`]).
    pub stats: VersionStats,
}

impl VersionState {
    /// Wrap a sequence clock. Sharing one `Arc` across several stores
    /// makes their stamps globally comparable (one logical timeline).
    pub fn new(clock: Arc<AtomicU64>) -> VersionState {
        VersionState {
            clock,
            pins: Mutex::new(BTreeMap::new()),
            stats: VersionStats::default(),
        }
    }

    /// Allocate the next sequence number (strictly positive).
    pub fn alloc_seq(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The most recently allocated sequence number.
    pub fn current_seq(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    /// Advance the clock to at least `seq` (replica apply, WAL/segment
    /// recovery) without allocating.
    pub fn observe_seq(&self, seq: u64) {
        self.clock.fetch_max(seq, Ordering::AcqRel);
    }

    /// Pin `seq`: compaction will preserve every version a view at
    /// `seq` could observe until the matching [`Self::unpin`].
    pub fn pin(&self, seq: u64) {
        let mut pins = self.pins.lock();
        *pins.entry(seq).or_insert(0) += 1;
        let live: u64 = pins.values().sum();
        self.stats.views_pinned.fetch_add(1, Ordering::Relaxed);
        self.stats.view_pin_peak.fetch_max(live, Ordering::Relaxed);
    }

    /// Release one pin at `seq`. Unbalanced unpins are ignored.
    pub fn unpin(&self, seq: u64) {
        let mut pins = self.pins.lock();
        if let Some(n) = pins.get_mut(&seq) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&seq);
            }
        }
    }

    /// The oldest pinned view, if any view is pinned.
    pub fn min_pinned(&self) -> Option<u64> {
        self.pins.lock().keys().next().copied()
    }

    /// Plain-value counter snapshot.
    pub fn stats_snapshot(&self) -> VersionStatsSnapshot {
        VersionStatsSnapshot {
            views_pinned: self.stats.views_pinned.load(Ordering::Relaxed),
            view_pin_peak: self.stats.view_pin_peak.load(Ordering::Relaxed),
            stale_seq_reads: self.stats.stale_seq_reads.load(Ordering::Relaxed),
            compactions_deferred: self.stats.compactions_deferred.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_roundtrip_and_ordering() {
        let mut a = b"key".to_vec();
        let mut b = b"key".to_vec();
        suffix_key(&mut a, 5);
        suffix_key(&mut b, 9);
        // Newer version sorts first (inverted suffix).
        assert!(b < a);
        assert_eq!(split_suffixed(&a), Some((b"key".as_slice(), 5)));
        assert_eq!(split_suffixed(&b), Some((b"key".as_slice(), 9)));
        assert_eq!(split_suffixed(b"short"), None);
    }

    #[test]
    fn clock_alloc_and_observe() {
        let vs = VersionState::new(Arc::new(AtomicU64::new(0)));
        assert_eq!(vs.alloc_seq(), 1);
        assert_eq!(vs.alloc_seq(), 2);
        vs.observe_seq(10);
        assert_eq!(vs.current_seq(), 10);
        vs.observe_seq(4); // never moves backwards
        assert_eq!(vs.current_seq(), 10);
        assert_eq!(vs.alloc_seq(), 11);
    }

    #[test]
    fn pins_track_min_and_peak() {
        let vs = VersionState::new(Arc::new(AtomicU64::new(0)));
        assert_eq!(vs.min_pinned(), None);
        vs.pin(7);
        vs.pin(3);
        vs.pin(7);
        assert_eq!(vs.min_pinned(), Some(3));
        vs.unpin(3);
        assert_eq!(vs.min_pinned(), Some(7));
        vs.unpin(7);
        vs.unpin(7);
        assert_eq!(vs.min_pinned(), None);
        let s = vs.stats_snapshot();
        assert_eq!(s.views_pinned, 3);
        assert_eq!(s.view_pin_peak, 3);
        assert_eq!(s.compactions_deferred, 0);
    }
}
