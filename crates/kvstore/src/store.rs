//! The multi-namespace store.
//!
//! A [`Store`] owns a directory and hands out [`Namespace`](crate::Namespace)
//! handles; each namespace is an independent [`Tree`] in its own
//! subdirectory, but all namespaces share one block cache and one I/O cost
//! profile — mirroring one RocksDB instance with column families per
//! backend server in the paper's deployment (§VI).

use crate::cache::BlockCache;
use crate::error::{Error, Result};
use crate::iomodel::{IoProfile, IoStatsSnapshot};
use crate::tree::{Tree, TreeConfig};
use crate::version::{VersionState, VersionStatsSnapshot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Configuration for opening a [`Store`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root directory; one subdirectory per namespace is created inside.
    pub dir: PathBuf,
    /// Memtable flush threshold per namespace, in bytes.
    pub memtable_bytes: usize,
    /// Bloom bits per key for new segments.
    pub bloom_bits_per_key: usize,
    /// Shared block-cache capacity in runs (16 entries per run). `0`
    /// disables caching, forcing every segment read cold.
    pub block_cache_runs: usize,
    /// The latency model charged per storage access.
    pub io: IoProfile,
    /// fsync the WAL on every write.
    pub sync_wal: bool,
    /// Auto-compact a namespace at this many segments (0 = never).
    pub auto_compact_segments: usize,
    /// MVCC sequence clock. `Some` turns on snapshot versioning: every
    /// write is stamped with a sequence number drawn from (or observed
    /// into) this clock, and reads can resolve against a pinned
    /// [`ReadView`](crate::version::ReadView). Share one `Arc` across
    /// stores to give a whole cluster a single comparable timeline.
    /// `None` (the default) stores raw keys with zero overhead.
    pub version_clock: Option<Arc<AtomicU64>>,
}

impl StoreConfig {
    /// Defaults tuned for tests and small experiments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            memtable_bytes: 4 << 20,
            bloom_bits_per_key: 10,
            block_cache_runs: 4096,
            io: IoProfile::free(),
            sync_wal: false,
            auto_compact_segments: 8,
            version_clock: None,
        }
    }

    /// Builder-style: set the I/O latency model.
    pub fn io(mut self, io: IoProfile) -> Self {
        self.io = io;
        self
    }

    /// Builder-style: set the block-cache capacity (in runs).
    pub fn block_cache_runs(mut self, runs: usize) -> Self {
        self.block_cache_runs = runs;
        self
    }

    /// Builder-style: set the memtable flush threshold.
    pub fn memtable_bytes(mut self, bytes: usize) -> Self {
        self.memtable_bytes = bytes;
        self
    }

    /// Builder-style: enable snapshot versioning against `clock`.
    pub fn version_clock(mut self, clock: Arc<AtomicU64>) -> Self {
        self.version_clock = Some(clock);
        self
    }
}

/// A directory of namespaces sharing a block cache and I/O model.
pub struct Store {
    cfg: StoreConfig,
    cache: Arc<BlockCache>,
    trees: Mutex<HashMap<String, Arc<Tree>>>,
    next_tree_tag: std::sync::atomic::AtomicU64,
    version: Option<Arc<VersionState>>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.cfg.dir)
            .finish_non_exhaustive()
    }
}

impl Store {
    /// Open (creating if needed) a store rooted at `cfg.dir`. Existing
    /// namespaces are discovered lazily on first [`Store::namespace`] call.
    pub fn open(cfg: StoreConfig) -> Result<Store> {
        std::fs::create_dir_all(&cfg.dir)?;
        let cache = Arc::new(BlockCache::new(cfg.block_cache_runs));
        let version = cfg
            .version_clock
            .clone()
            .map(|clock| Arc::new(VersionState::new(clock)));
        Ok(Store {
            cfg,
            cache,
            trees: Mutex::new(HashMap::new()),
            next_tree_tag: std::sync::atomic::AtomicU64::new(0),
            version,
        })
    }

    /// Get (opening or creating on first use) a namespace handle.
    pub fn namespace(&self, name: &str) -> Result<Arc<Tree>> {
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
        {
            return Err(Error::InvalidNamespace(name.to_string()));
        }
        let mut trees = self.trees.lock();
        if let Some(t) = trees.get(name) {
            return Ok(t.clone());
        }
        let tag = self
            .next_tree_tag
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tree = Arc::new(Tree::open_versioned(
            name,
            tag,
            self.cfg.dir.join(name),
            self.cache.clone(),
            self.cfg.io,
            TreeConfig {
                memtable_bytes: self.cfg.memtable_bytes,
                bloom_bits_per_key: self.cfg.bloom_bits_per_key,
                auto_compact_segments: self.cfg.auto_compact_segments,
                sync_wal: self.cfg.sync_wal,
            },
            self.version.clone(),
        )?);
        trees.insert(name.to_string(), tree.clone());
        Ok(tree)
    }

    /// Names of all namespaces opened so far in this process.
    pub fn open_namespaces(&self) -> Vec<String> {
        let mut v: Vec<String> = self.trees.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of every namespace of this store, whether opened in this
    /// process or only present on disk — the union a shard migration must
    /// enumerate to ship a complete snapshot.
    pub fn list_namespaces(&self) -> Vec<String> {
        let mut set: std::collections::BTreeSet<String> =
            self.trees.lock().keys().cloned().collect();
        if let Ok(rd) = std::fs::read_dir(&self.cfg.dir) {
            for entry in rd.flatten() {
                if entry.path().is_dir() {
                    if let Some(name) = entry.file_name().to_str() {
                        set.insert(name.to_string());
                    }
                }
            }
        }
        set.into_iter().collect()
    }

    /// Flush every open namespace.
    pub fn flush_all(&self) -> Result<()> {
        let trees: Vec<Arc<Tree>> = self.trees.lock().values().cloned().collect();
        for t in trees {
            t.flush()?;
        }
        Ok(())
    }

    /// Compact every open namespace.
    pub fn compact_all(&self) -> Result<()> {
        let trees: Vec<Arc<Tree>> = self.trees.lock().values().cloned().collect();
        for t in trees {
            t.compact()?;
        }
        Ok(())
    }

    /// Clear the shared block cache (forces subsequent reads cold —
    /// the paper's cold-start experimental condition).
    pub fn drop_caches(&self) {
        self.cache.clear();
    }

    /// Aggregate I/O statistics across all open namespaces.
    pub fn io_stats(&self) -> IoStatsSnapshot {
        let trees = self.trees.lock();
        let mut agg = IoStatsSnapshot::default();
        for t in trees.values() {
            let s = t.io_stats();
            agg.warm += s.warm;
            agg.cold += s.cold;
            agg.sequential += s.sequential;
            agg.bytes_read += s.bytes_read;
            agg.bytes_written += s.bytes_written;
        }
        agg
    }

    /// The configured I/O model.
    pub fn io_profile(&self) -> IoProfile {
        self.cfg.io
    }

    /// Whether snapshot versioning is on for this store.
    pub fn versioning_enabled(&self) -> bool {
        self.version.is_some()
    }

    /// The versioning state, when enabled.
    pub fn versioning(&self) -> Option<&Arc<VersionState>> {
        self.version.as_ref()
    }

    /// Allocate the next write sequence number (`None` with versioning
    /// off).
    pub fn alloc_seq(&self) -> Option<u64> {
        self.version.as_ref().map(|v| v.alloc_seq())
    }

    /// The latest allocated/observed sequence number (0 when off).
    pub fn current_seq(&self) -> u64 {
        self.version.as_ref().map_or(0, |v| v.current_seq())
    }

    /// Advance the clock to at least `seq` without allocating (replica
    /// apply at the primary's stamp; recovery). No-op when off.
    pub fn observe_seq(&self, seq: u64) {
        if let Some(v) = &self.version {
            v.observe_seq(seq);
        }
    }

    /// Pin a read view so compaction keeps every version visible at
    /// `seq`. No-op when versioning is off.
    pub fn pin_view(&self, seq: u64) {
        if let Some(v) = &self.version {
            v.pin(seq);
        }
    }

    /// Release a pin taken by [`Store::pin_view`].
    pub fn unpin_view(&self, seq: u64) {
        if let Some(v) = &self.version {
            v.unpin(seq);
        }
    }

    /// Versioning counters (all zero when versioning is off).
    pub fn version_stats(&self) -> VersionStatsSnapshot {
        self.version
            .as_ref()
            .map_or_else(VersionStatsSnapshot::default, |v| v.stats_snapshot())
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &PathBuf {
        &self.cfg.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gtkv-store-{}-{name}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn namespaces_are_isolated() {
        let dir = tmp("iso");
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        let a = s.namespace("alpha").unwrap();
        let b = s.namespace("beta").unwrap();
        a.put(b"k".to_vec(), Bytes::from_static(b"from-a")).unwrap();
        assert_eq!(b.get(b"k").unwrap(), None);
        assert_eq!(a.get(b"k").unwrap(), Some(Bytes::from_static(b"from-a")));
        assert_eq!(s.open_namespaces(), vec!["alpha", "beta"]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn namespace_handle_is_shared() {
        let dir = tmp("shared");
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        let a1 = s.namespace("ns").unwrap();
        let a2 = s.namespace("ns").unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn invalid_namespace_names_rejected() {
        let dir = tmp("invalid");
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        assert!(s.namespace("").is_err());
        assert!(s.namespace("a/b").is_err());
        assert!(s.namespace("..").is_ok()); // dots allowed; traversal needs '/' which is rejected
        assert!(s.namespace("ok_name-1.x").is_ok());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn store_reopen_preserves_data() {
        let dir = tmp("reopen");
        {
            let s = Store::open(StoreConfig::new(&dir)).unwrap();
            let ns = s.namespace("ns").unwrap();
            ns.put(b"persist".to_vec(), Bytes::from_static(b"yes"))
                .unwrap();
            s.flush_all().unwrap();
        }
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        let ns = s.namespace("ns").unwrap();
        assert_eq!(
            ns.get(b"persist").unwrap(),
            Some(Bytes::from_static(b"yes"))
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn list_namespaces_sees_disk_and_open_sets() {
        let dir = tmp("list");
        {
            let s = Store::open(StoreConfig::new(&dir)).unwrap();
            s.namespace("alpha")
                .unwrap()
                .put(b"k".to_vec(), Bytes::from_static(b"v"))
                .unwrap();
            s.flush_all().unwrap();
        }
        // A fresh handle has nothing open, but alpha is on disk; opening
        // beta (not yet flushed) must appear too.
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        s.namespace("beta").unwrap();
        assert_eq!(s.list_namespaces(), vec!["alpha", "beta"]);
        assert_eq!(s.open_namespaces(), vec!["beta"]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn io_stats_aggregate() {
        let dir = tmp("stats");
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        let ns = s.namespace("ns").unwrap();
        ns.put(b"k".to_vec(), Bytes::from_static(b"v")).unwrap();
        ns.get(b"k").unwrap();
        let st = s.io_stats();
        assert!(st.warm >= 1);
        assert!(st.bytes_written > 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn shared_cache_does_not_alias_across_namespaces() {
        // Regression: both namespaces have a segment with id 1; a cached
        // run from one must never satisfy a read from the other.
        let dir = tmp("alias");
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        let a = s.namespace("alpha").unwrap();
        let b = s.namespace("beta").unwrap();
        a.put(b"k".to_vec(), Bytes::from_static(b"from-a")).unwrap();
        b.put(b"k".to_vec(), Bytes::from_static(b"from-b")).unwrap();
        s.flush_all().unwrap();
        s.drop_caches();
        // Populate the cache from alpha's seg-1, then read beta's seg-1.
        assert_eq!(a.get(b"k").unwrap(), Some(Bytes::from_static(b"from-a")));
        assert_eq!(b.get(b"k").unwrap(), Some(Bytes::from_static(b"from-b")));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn drop_caches_forces_cold_reads() {
        let dir = tmp("dropcache");
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        let ns = s.namespace("ns").unwrap();
        ns.put(b"k".to_vec(), Bytes::from_static(b"v")).unwrap();
        ns.flush().unwrap();
        ns.get(b"k").unwrap(); // cold (first segment read)
        ns.get(b"k").unwrap(); // warm (cached run)
        let before = ns.io_stats();
        assert_eq!(before.cold, 1);
        s.drop_caches();
        ns.get(b"k").unwrap(); // cold again
        let after = ns.io_stats();
        assert_eq!(after.cold, 2);
        std::fs::remove_dir_all(dir).ok();
    }
}
