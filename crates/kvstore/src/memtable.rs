//! In-memory sorted write buffer.
//!
//! The memtable absorbs writes (already made durable by the WAL) and is
//! flushed to an immutable [`segment`](crate::segment) once it exceeds the
//! configured size. Deletes are recorded as tombstones (`None`) so they can
//! shadow older segment entries until compaction drops them.

use bytes::Bytes;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Sorted map of key → value-or-tombstone with byte-size accounting.
#[derive(Debug, Default)]
pub struct MemTable {
    entries: BTreeMap<Vec<u8>, Option<Bytes>>,
    approx_bytes: usize,
}

impl MemTable {
    /// Create an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or overwrite a key.
    pub fn put(&mut self, key: Vec<u8>, value: Bytes) {
        self.account(&key, Some(&value));
        self.entries.insert(key, Some(value));
    }

    /// Record a tombstone for a key.
    pub fn delete(&mut self, key: Vec<u8>) {
        self.account(&key, None);
        self.entries.insert(key, None);
    }

    fn account(&mut self, key: &[u8], value: Option<&Bytes>) {
        // Overwrites leak a little accounting; flushes reset it, so the
        // bound only needs to be approximate.
        self.approx_bytes += key.len() + value.map_or(0, |v| v.len()) + 32;
    }

    /// Look up a key. `Some(None)` means "deleted here" (tombstone);
    /// `None` means "not present in this memtable, check older data".
    pub fn get(&self, key: &[u8]) -> Option<Option<Bytes>> {
        self.entries.get(key).cloned()
    }

    /// Ordered iteration over entries whose key starts with `prefix`,
    /// tombstones included.
    pub fn scan_prefix<'a>(
        &'a self,
        prefix: &'a [u8],
    ) -> impl Iterator<Item = (&'a [u8], Option<&'a Bytes>)> + 'a {
        self.entries
            .range::<[u8], _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_slice(), v.as_ref()))
    }

    /// All entries in key order (used by flush).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&Bytes>)> {
        self.entries.iter().map(|(k, v)| (k.as_slice(), v.as_ref()))
    }

    /// Approximate resident size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Number of entries, tombstones included.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all entries and reset accounting (after a successful flush).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.approx_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_delete() {
        let mut m = MemTable::new();
        assert!(m.is_empty());
        m.put(b"k1".to_vec(), b("v1"));
        assert_eq!(m.get(b"k1"), Some(Some(b("v1"))));
        assert_eq!(m.get(b"k2"), None);
        m.delete(b"k1".to_vec());
        assert_eq!(m.get(b"k1"), Some(None)); // tombstone
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let mut m = MemTable::new();
        m.put(b"k".to_vec(), b("old"));
        m.put(b"k".to_vec(), b("new"));
        assert_eq!(m.get(b"k"), Some(Some(b("new"))));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn prefix_scan_is_ordered_and_bounded() {
        let mut m = MemTable::new();
        m.put(b"e/1/read/9".to_vec(), b("a"));
        m.put(b"e/1/run/3".to_vec(), b("b"));
        m.put(b"e/1/run/1".to_vec(), b("c"));
        m.put(b"e/2/run/1".to_vec(), b("d"));
        m.put(b"d/x".to_vec(), b("e"));
        let got: Vec<_> = m
            .scan_prefix(b"e/1/run/")
            .map(|(k, _)| String::from_utf8_lossy(k).into_owned())
            .collect();
        assert_eq!(got, vec!["e/1/run/1", "e/1/run/3"]);
    }

    #[test]
    fn prefix_scan_includes_tombstones() {
        let mut m = MemTable::new();
        m.put(b"p/a".to_vec(), b("1"));
        m.delete(b"p/b".to_vec());
        let got: Vec<_> = m.scan_prefix(b"p/").collect();
        assert_eq!(got.len(), 2);
        assert!(got[1].1.is_none());
    }

    #[test]
    fn size_accounting_grows_and_clears() {
        let mut m = MemTable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.put(b"key".to_vec(), b("value"));
        assert!(m.approx_bytes() >= 8);
        m.clear();
        assert_eq!(m.approx_bytes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn empty_prefix_scans_everything_in_order() {
        let mut m = MemTable::new();
        m.put(b"b".to_vec(), b("2"));
        m.put(b"a".to_vec(), b("1"));
        let keys: Vec<_> = m.scan_prefix(b"").map(|(k, _)| k.to_vec()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec()]);
    }
}
