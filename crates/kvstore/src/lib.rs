#![warn(missing_docs)]

//! # gt-kvstore — log-structured persistent key-value store
//!
//! A compact but complete LSM-style key-value store used as the storage
//! substrate of the GraphTrek reproduction. The paper deploys RocksDB on
//! every backend server (§VI); this crate plays that role with the same
//! structural properties the traversal engine relies on:
//!
//! * **Namespaces** — independent keyspaces ("different types of vertices
//!   are mapped into key-value pairs in separate namespaces", §VI). Each
//!   namespace is its own LSM tree (WAL + memtable + sorted segments).
//! * **Sorted, prefix-scannable storage** — "the attributes and the
//!   connected edges of a vertex [are] sequentially stored for better scan
//!   performance" (§VI). [`Tree::scan_prefix`] performs a merged
//!   ordered scan over the memtable and all on-disk segments.
//! * **Write-ahead logging** with CRC-protected atomic batches, memtable
//!   flush into immutable sorted segment files carrying a sparse index and
//!   a bloom filter, a block cache, and full-merge compaction.
//! * **An I/O cost model** ([`IoProfile`]) that charges configurable
//!   latencies for cold (disk) versus warm (memory) accesses, standing in
//!   for the rotating-disk / GPFS behaviour of the paper's testbed. The
//!   traversal-engine experiments measure exactly this cost, so the model
//!   is a first-class part of the substrate rather than a benchmarking
//!   afterthought.
//!
//! ```
//! use gt_kvstore::{Store, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("gtkv-doc-{}", std::process::id()));
//! let store = Store::open(StoreConfig::new(&dir)).unwrap();
//! let ns = store.namespace("vertices").unwrap();
//! ns.put(b"v/42", b"hello".as_slice()).unwrap();
//! assert_eq!(ns.get(b"v/42").unwrap().as_deref(), Some(b"hello".as_slice()));
//! # drop(store);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod batch;
pub mod bloom;
pub mod cache;
pub mod error;
pub mod iomodel;
pub mod memtable;
pub mod segment;
pub mod store;
pub mod tree;
pub mod version;
pub mod wal;

pub use batch::WriteBatch;
pub use error::{Error, Result};
pub use iomodel::{AccessKind, IoProfile, IoStats};
pub use store::{Store, StoreConfig};
pub use tree::Tree;
pub use version::{ReadView, VersionState, VersionStatsSnapshot};

/// Handle to a single namespace (column-family equivalent) of a [`Store`].
pub type Namespace = std::sync::Arc<Tree>;

/// CRC-32 (IEEE) used by the WAL and segment footers.
///
/// Implemented locally so the store has zero non-sanctioned dependencies.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_corruption() {
        let a = crc32(b"graphtrek");
        let b = crc32(b"graphtrex");
        assert_ne!(a, b);
    }
}
