//! Storage I/O cost model.
//!
//! The paper's evaluation runs "from a cold start in order to force disk
//! access in the traversal engine" (§VII) — every real vertex visit costs a
//! disk read, which is precisely what the traversal-affiliate cache and
//! execution merging save. Running on a modern laptop with an OS page cache
//! would hide that cost entirely, so the store charges a synthetic latency
//! per access class instead. The profile is configurable per store:
//! zero-cost for unit tests, "local disk" and "shared parallel FS (GPFS)"
//! presets for the benchmark harness (the paper reports GPFS numbers, with
//! local disks ~10% faster).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Classification of a single storage access, used to pick the charged cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Served from the memtable or the block cache: memory speed.
    Warm,
    /// Required reading a segment file region not in cache: disk speed.
    Cold,
    /// A continued sequential read immediately following a cold read
    /// (e.g. scanning the edge list stored adjacent to a vertex). The
    /// paper's layout stores a vertex's edges together exactly so that
    /// these accesses are sequential and cheap (§IV-B).
    Sequential,
}

/// Latency charged per access class.
///
/// All latencies are wall-clock sleeps performed by the calling thread,
/// which is the thread of the traversal worker that issued the storage
/// request — matching a synchronous `pread` on the paper's backend servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoProfile {
    /// Cost of a cold random read (disk seek + first block).
    pub cold_read: Duration,
    /// Cost of a warm (memory) read.
    pub warm_read: Duration,
    /// Cost of each additional sequential key during a scan run.
    pub sequential_read: Duration,
}

impl IoProfile {
    /// No charged latency at all — the right profile for unit tests.
    pub const fn free() -> Self {
        IoProfile {
            cold_read: Duration::ZERO,
            warm_read: Duration::ZERO,
            sequential_read: Duration::ZERO,
        }
    }

    /// A local-hard-disk-like profile, scaled down so that experiments
    /// complete in seconds instead of the paper's minutes. The *ratios*
    /// (cold ≫ sequential ≫ warm) are what matter for reproducing the
    /// shape of the results.
    pub const fn local_disk() -> Self {
        IoProfile {
            cold_read: Duration::from_micros(120),
            warm_read: Duration::from_nanos(300),
            sequential_read: Duration::from_micros(4),
        }
    }

    /// A shared-parallel-filesystem-like profile (the paper's GPFS runs):
    /// ~10% slower cold reads than local disk, matching the paper's
    /// observation in §VII.
    pub const fn shared_fs() -> Self {
        IoProfile {
            cold_read: Duration::from_micros(132),
            warm_read: Duration::from_nanos(300),
            sequential_read: Duration::from_micros(5),
        }
    }

    /// Whether all latencies are zero (charging can be skipped entirely).
    pub fn is_free(&self) -> bool {
        self.cold_read.is_zero() && self.warm_read.is_zero() && self.sequential_read.is_zero()
    }

    /// The latency for one access of the given kind.
    pub fn cost(&self, kind: AccessKind) -> Duration {
        match kind {
            AccessKind::Warm => self.warm_read,
            AccessKind::Cold => self.cold_read,
            AccessKind::Sequential => self.sequential_read,
        }
    }

    /// Block the calling thread for the cost of `kind`, busy-spinning for
    /// sub-50µs costs (OS sleep granularity would otherwise quantize the
    /// model) and sleeping for larger ones.
    pub fn charge(&self, kind: AccessKind) {
        let d = self.cost(kind);
        charge_duration(d);
    }
}

impl Default for IoProfile {
    fn default() -> Self {
        IoProfile::free()
    }
}

/// Realize a modeled latency by sleeping.
///
/// Sleeping (rather than busy-spinning) is essential to the simulation:
/// a thread "waiting on disk" must release the CPU so other simulated
/// servers can run — especially on low-core-count hosts where dozens of
/// server threads share a core. Only sub-5µs costs are spun, where OS
/// sleep granularity would round them up by an order of magnitude.
pub fn charge_duration(d: Duration) {
    if d.is_zero() {
        return;
    }
    if d >= Duration::from_micros(5) {
        std::thread::sleep(d);
        return;
    }
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// Per-tree access statistics, updated lock-free.
///
/// The traversal engine's Figure-7 instrumentation ("real I/O visits")
/// ultimately grounds out in these counters.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Number of warm (memory) accesses served.
    pub warm: AtomicU64,
    /// Number of cold (disk) accesses served.
    pub cold: AtomicU64,
    /// Number of sequential-scan continuation accesses served.
    pub sequential: AtomicU64,
    /// Total bytes returned to callers.
    pub bytes_read: AtomicU64,
    /// Total bytes written (WAL + segments).
    pub bytes_written: AtomicU64,
}

impl IoStats {
    /// Record one access of the given kind returning `bytes` bytes.
    pub fn record(&self, kind: AccessKind, bytes: usize) {
        match kind {
            AccessKind::Warm => self.warm.fetch_add(1, Ordering::Relaxed),
            AccessKind::Cold => self.cold.fetch_add(1, Ordering::Relaxed),
            AccessKind::Sequential => self.sequential.fetch_add(1, Ordering::Relaxed),
        };
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record `bytes` written to durable media.
    pub fn record_write(&self, bytes: usize) {
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Snapshot of the counters as plain integers.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            warm: self.warm.load(Ordering::Relaxed),
            cold: self.cold.load(Ordering::Relaxed),
            sequential: self.sequential.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Warm accesses.
    pub warm: u64,
    /// Cold accesses.
    pub cold: u64,
    /// Sequential continuation accesses.
    pub sequential: u64,
    /// Bytes returned to callers.
    pub bytes_read: u64,
    /// Bytes written to durable media.
    pub bytes_written: u64,
}

impl IoStatsSnapshot {
    /// Total accesses of any kind.
    pub fn total_accesses(&self) -> u64 {
        self.warm + self.cold + self.sequential
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_profile_charges_nothing() {
        let p = IoProfile::free();
        assert!(p.is_free());
        let t = std::time::Instant::now();
        for _ in 0..10_000 {
            p.charge(AccessKind::Cold);
        }
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn presets_have_expected_ordering() {
        for p in [IoProfile::local_disk(), IoProfile::shared_fs()] {
            assert!(p.cold_read > p.sequential_read);
            assert!(p.sequential_read > p.warm_read);
        }
        assert!(IoProfile::shared_fs().cold_read > IoProfile::local_disk().cold_read);
    }

    #[test]
    fn charge_duration_roughly_accurate() {
        let d = Duration::from_micros(100);
        let t = std::time::Instant::now();
        charge_duration(d);
        let e = t.elapsed();
        assert!(e >= d, "elapsed {e:?} < requested {d:?}");
    }

    #[test]
    fn stats_record_and_snapshot() {
        let s = IoStats::default();
        s.record(AccessKind::Cold, 100);
        s.record(AccessKind::Warm, 10);
        s.record(AccessKind::Sequential, 5);
        s.record_write(64);
        let snap = s.snapshot();
        assert_eq!(snap.cold, 1);
        assert_eq!(snap.warm, 1);
        assert_eq!(snap.sequential, 1);
        assert_eq!(snap.bytes_read, 115);
        assert_eq!(snap.bytes_written, 64);
        assert_eq!(snap.total_accesses(), 3);
    }
}
