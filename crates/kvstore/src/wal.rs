//! Write-ahead log.
//!
//! Every mutation (single op or batch) is appended to the tree's WAL as a
//! single CRC-protected, length-prefixed record *before* it touches the
//! memtable, so a crash between acknowledgment and flush loses nothing.
//! Records are replayed into a fresh memtable at open time; a truncated or
//! corrupt tail record is treated as "crash during the last write" and the
//! log is truncated there (the RocksDB `kTolerateCorruptedTailRecords`
//! behaviour), while corruption in the *middle* of the log is an error.
//!
//! Record layout:
//! ```text
//! u32 payload_len | u32 crc32(payload) | payload
//! payload := u32 n_ops | n_ops * ( u8 kind | u32 klen | key | [u32 vlen | value] )
//! ```

use crate::batch::{BatchOp, WriteBatch};
use crate::error::{Error, Result};
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;

/// Append-only writer for a tree's WAL file.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Bytes appended since open/rotate (diagnostics & rotation policy).
    written: u64,
    sync_on_write: bool,
}

impl Wal {
    /// Open (creating if necessary) the WAL at `path` for appending.
    pub fn open(path: impl Into<PathBuf>, sync_on_write: bool) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        Ok(Wal {
            path,
            writer: BufWriter::new(file),
            written,
            sync_on_write,
        })
    }

    /// Append one batch as a single atomic record.
    pub fn append(&mut self, batch: &WriteBatch) -> Result<()> {
        let payload = encode_payload(batch);
        let mut header = [0u8; 8];
        header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..8].copy_from_slice(&crate::crc32(&payload).to_le_bytes());
        self.writer.write_all(&header)?;
        self.writer.write_all(&payload)?;
        self.writer.flush()?;
        if self.sync_on_write {
            self.writer.get_ref().sync_data()?;
        }
        self.written += (header.len() + payload.len()) as u64;
        Ok(())
    }

    /// Total bytes in the log file.
    pub fn len_bytes(&self) -> u64 {
        self.written
    }

    /// Truncate the log after its contents were flushed to a segment.
    pub fn reset(&mut self) -> Result<()> {
        self.writer.flush()?;
        let file = self.writer.get_mut();
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        self.written = 0;
        Ok(())
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn encode_payload(batch: &WriteBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(batch.encoded_size() + 4);
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for op in batch.iter() {
        match op {
            BatchOp::Put { key, value } => {
                out.push(KIND_PUT);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
            BatchOp::Delete { key } => {
                out.push(KIND_DELETE);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
            }
        }
    }
    out
}

fn decode_payload(payload: &[u8], file: &str) -> Result<Vec<BatchOp>> {
    let corrupt = |d: &str| Error::corruption(file, d);
    if payload.len() < 4 {
        return Err(corrupt("payload shorter than op count"));
    }
    let n_ops = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    let mut ops = Vec::with_capacity(n_ops);
    let mut pos = 4usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        if *pos + n > payload.len() {
            return Err(Error::corruption(file, "op extends past payload"));
        }
        let s = &payload[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    for _ in 0..n_ops {
        let kind = take(&mut pos, 1)?[0];
        let klen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let key = take(&mut pos, klen)?.to_vec();
        match kind {
            KIND_PUT => {
                let vlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
                let value = Bytes::copy_from_slice(take(&mut pos, vlen)?);
                ops.push(BatchOp::Put { key, value });
            }
            KIND_DELETE => ops.push(BatchOp::Delete { key }),
            k => return Err(corrupt(&format!("unknown op kind {k}"))),
        }
    }
    if pos != payload.len() {
        return Err(corrupt("trailing bytes after last op"));
    }
    Ok(ops)
}

/// Outcome of replaying a WAL file.
#[derive(Debug)]
pub struct Replay {
    /// Every committed batch in append order.
    pub batches: Vec<Vec<BatchOp>>,
    /// Byte offset of the first invalid tail record, if the log had a
    /// truncated/corrupt tail that was discarded.
    pub truncated_at: Option<u64>,
}

/// Replay a WAL file, tolerating a corrupt tail record.
pub fn replay(path: &Path) -> Result<Replay> {
    let fname = path.display().to_string();
    let mut batches = Vec::new();
    let mut truncated_at = None;
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Replay {
                batches,
                truncated_at,
            })
        }
        Err(e) => return Err(e.into()),
    };
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    let mut pos = 0usize;
    while pos < data.len() {
        if pos + 8 > data.len() {
            truncated_at = Some(pos as u64);
            break;
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if pos + 8 + len > data.len() {
            truncated_at = Some(pos as u64);
            break;
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crate::crc32(payload) != crc {
            // A bad CRC on the final record is a torn write; anywhere else
            // it is real corruption.
            if is_tail(&data, pos + 8 + len) {
                truncated_at = Some(pos as u64);
                break;
            }
            return Err(Error::corruption(
                &fname,
                format!("bad crc at offset {pos}"),
            ));
        }
        batches.push(decode_payload(payload, &fname)?);
        pos += 8 + len;
    }
    if let Some(off) = truncated_at {
        // Drop the torn tail so subsequent appends produce a clean log.
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(off)?;
    }
    Ok(Replay {
        batches,
        truncated_at,
    })
}

/// Whether `end` is the end of the data, i.e. the record ending there is
/// the last record in the log.
fn is_tail(data: &[u8], end: usize) -> bool {
    end >= data.len()
}

// ---------------------------------------------------------------------
// Blob log: opaque-record variant of the WAL
// ---------------------------------------------------------------------

/// Append-only log of opaque byte records, framed exactly like the WAL
/// (`u32 len | u32 crc32 | payload`) but without interpreting the
/// payload. Used by the traversal control plane to persist per-travel
/// ledger event streams next to the data WAL.
#[derive(Debug)]
pub struct BlobLog {
    path: PathBuf,
    writer: BufWriter<File>,
    written: u64,
    sync_on_write: bool,
}

impl BlobLog {
    /// Open (creating if necessary) the blob log at `path` for appending.
    pub fn open(path: impl Into<PathBuf>, sync_on_write: bool) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        Ok(BlobLog {
            path,
            writer: BufWriter::new(file),
            written,
            sync_on_write,
        })
    }

    /// Append one opaque record.
    pub fn append(&mut self, blob: &[u8]) -> Result<()> {
        let mut header = [0u8; 8];
        header[0..4].copy_from_slice(&(blob.len() as u32).to_le_bytes());
        header[4..8].copy_from_slice(&crate::crc32(blob).to_le_bytes());
        self.writer.write_all(&header)?;
        self.writer.write_all(blob)?;
        self.writer.flush()?;
        if self.sync_on_write {
            self.writer.get_ref().sync_data()?;
        }
        self.written += (header.len() + blob.len()) as u64;
        Ok(())
    }

    /// Total bytes in the log file.
    pub fn len_bytes(&self) -> u64 {
        self.written
    }

    /// Truncate the log (e.g. after every tracked stream was compacted
    /// away or retired).
    pub fn reset(&mut self) -> Result<()> {
        self.writer.flush()?;
        let file = self.writer.get_mut();
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        self.written = 0;
        Ok(())
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Outcome of replaying a blob log.
#[derive(Debug)]
pub struct BlobReplay {
    /// Every committed record in append order.
    pub blobs: Vec<Vec<u8>>,
    /// Byte offset of a torn tail record that was discarded, if any.
    pub truncated_at: Option<u64>,
}

/// Replay a blob log, tolerating a torn tail record.
///
/// Unlike [`replay`], this **never truncates the file**: a failover
/// orchestrator reads the log of a crashed server that may be restarted
/// (and hold the file open for append) concurrently, so the read side
/// must be strictly non-destructive. A torn tail is simply skipped.
pub fn replay_blobs(path: &Path) -> Result<BlobReplay> {
    let fname = path.display().to_string();
    let mut blobs = Vec::new();
    let mut truncated_at = None;
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(BlobReplay {
                blobs,
                truncated_at,
            })
        }
        Err(e) => return Err(e.into()),
    };
    let mut data = Vec::new();
    file.read_to_end(&mut data)?;
    let mut pos = 0usize;
    while pos < data.len() {
        if pos + 8 > data.len() {
            truncated_at = Some(pos as u64);
            break;
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if pos + 8 + len > data.len() {
            truncated_at = Some(pos as u64);
            break;
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crate::crc32(payload) != crc {
            if is_tail(&data, pos + 8 + len) {
                truncated_at = Some(pos as u64);
                break;
            }
            return Err(Error::corruption(
                &fname,
                format!("bad crc at offset {pos}"),
            ));
        }
        blobs.push(payload.to_vec());
        pos += 8 + len;
    }
    Ok(BlobReplay {
        blobs,
        truncated_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gtkv-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join("wal.log")
    }

    fn batch_put(k: &str, v: &str) -> WriteBatch {
        let mut b = WriteBatch::new();
        b.put(k.as_bytes().to_vec(), Bytes::copy_from_slice(v.as_bytes()));
        b
    }

    #[test]
    fn roundtrip_multiple_batches() {
        let p = tmp("roundtrip");
        std::fs::remove_file(&p).ok();
        {
            let mut w = Wal::open(&p, false).unwrap();
            w.append(&batch_put("a", "1")).unwrap();
            let mut b = WriteBatch::new();
            b.put(b"b".to_vec(), Bytes::from_static(b"2"))
                .delete(b"a".to_vec());
            w.append(&b).unwrap();
        }
        let r = replay(&p).unwrap();
        assert!(r.truncated_at.is_none());
        assert_eq!(r.batches.len(), 2);
        assert_eq!(r.batches[1].len(), 2);
        assert!(matches!(&r.batches[1][1], BatchOp::Delete { key } if key == b"a"));
    }

    #[test]
    fn missing_file_is_empty_replay() {
        let p = tmp("missing");
        std::fs::remove_file(&p).ok();
        let r = replay(&p).unwrap();
        assert!(r.batches.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let p = tmp("torn");
        std::fs::remove_file(&p).ok();
        {
            let mut w = Wal::open(&p, false).unwrap();
            w.append(&batch_put("a", "1")).unwrap();
            w.append(&batch_put("b", "2")).unwrap();
        }
        // Chop 3 bytes off the end, simulating a crash mid-append.
        let len = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let r = replay(&p).unwrap();
        assert_eq!(r.batches.len(), 1);
        assert!(r.truncated_at.is_some());
        // The file must now be cleanly appendable.
        let mut w = Wal::open(&p, false).unwrap();
        w.append(&batch_put("c", "3")).unwrap();
        drop(w);
        let r2 = replay(&p).unwrap();
        assert_eq!(r2.batches.len(), 2);
        assert!(r2.truncated_at.is_none());
    }

    #[test]
    fn mid_log_corruption_is_fatal() {
        let p = tmp("midcorrupt");
        std::fs::remove_file(&p).ok();
        {
            let mut w = Wal::open(&p, false).unwrap();
            w.append(&batch_put("aaaaaaaa", "11111111")).unwrap();
            w.append(&batch_put("bbbbbbbb", "22222222")).unwrap();
        }
        // Flip a payload byte inside the *first* record.
        let mut data = std::fs::read(&p).unwrap();
        data[10] ^= 0xFF;
        std::fs::write(&p, &data).unwrap();
        assert!(matches!(replay(&p), Err(Error::Corruption { .. })));
    }

    #[test]
    fn blob_log_roundtrip_and_torn_tail_is_nondestructive() {
        let p = tmp("blob");
        std::fs::remove_file(&p).ok();
        {
            let mut w = BlobLog::open(&p, false).unwrap();
            w.append(b"alpha").unwrap();
            w.append(b"").unwrap();
            w.append(b"gamma-record").unwrap();
        }
        let r = replay_blobs(&p).unwrap();
        assert!(r.truncated_at.is_none());
        assert_eq!(
            r.blobs,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma-record".to_vec()]
        );
        // Tear the tail; replay skips it but must NOT shrink the file
        // (a restarted writer may hold it open for append).
        let len = std::fs::metadata(&p).unwrap().len();
        let f = OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        let r2 = replay_blobs(&p).unwrap();
        assert_eq!(r2.blobs.len(), 2);
        assert!(r2.truncated_at.is_some());
        assert_eq!(std::fs::metadata(&p).unwrap().len(), len - 2);
    }

    #[test]
    fn blob_log_mid_corruption_is_fatal_and_reset_works() {
        let p = tmp("blob-corrupt");
        std::fs::remove_file(&p).ok();
        {
            let mut w = BlobLog::open(&p, false).unwrap();
            w.append(b"aaaaaaaaaaaa").unwrap();
            w.append(b"bbbbbbbbbbbb").unwrap();
        }
        let mut data = std::fs::read(&p).unwrap();
        data[10] ^= 0xFF;
        std::fs::write(&p, &data).unwrap();
        assert!(matches!(replay_blobs(&p), Err(Error::Corruption { .. })));
        let mut w = BlobLog::open(&p, false).unwrap();
        w.reset().unwrap();
        assert_eq!(w.len_bytes(), 0);
        w.append(b"fresh").unwrap();
        drop(w);
        assert_eq!(replay_blobs(&p).unwrap().blobs, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn reset_empties_log() {
        let p = tmp("reset");
        std::fs::remove_file(&p).ok();
        let mut w = Wal::open(&p, false).unwrap();
        w.append(&batch_put("a", "1")).unwrap();
        assert!(w.len_bytes() > 0);
        w.reset().unwrap();
        assert_eq!(w.len_bytes(), 0);
        assert!(replay(&p).unwrap().batches.is_empty());
        // And appends continue to work post-reset.
        w.append(&batch_put("z", "9")).unwrap();
        drop(w);
        assert_eq!(replay(&p).unwrap().batches.len(), 1);
    }
}
