//! A single namespace: WAL + memtable + sorted segments.
//!
//! `Tree` is the per-namespace LSM pipeline. Writes go WAL → memtable and
//! are flushed to immutable [`Segment`]s when the memtable exceeds its
//! budget; reads consult the memtable first and then segments newest-first;
//! compaction merges every segment into one, dropping shadowed versions and
//! tombstones. All operations are thread-safe: reads share a read lock,
//! mutations serialize on a write lock (single-writer, like RocksDB's
//! default column-family write path).

use crate::batch::{BatchOp, WriteBatch};
use crate::cache::BlockCache;
use crate::error::Result;
use crate::iomodel::{AccessKind, IoProfile, IoStats};
use crate::memtable::MemTable;
use crate::segment::{Segment, SegmentBuilder};
use crate::version::{self, ReadView, VersionState};
use crate::wal;
use crate::wal::Wal;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for one tree (normally inherited from the store config).
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Flush the memtable once it holds roughly this many bytes.
    pub memtable_bytes: usize,
    /// Bloom-filter budget for new segments.
    pub bloom_bits_per_key: usize,
    /// Run a full compaction automatically once this many segments exist.
    /// `0` disables auto-compaction.
    pub auto_compact_segments: usize,
    /// fsync the WAL on every write (durability vs throughput).
    pub sync_wal: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            memtable_bytes: 4 << 20,
            bloom_bits_per_key: 10,
            auto_compact_segments: 8,
            sync_wal: false,
        }
    }
}

struct TreeInner {
    memtable: MemTable,
    /// Newest first; ids are strictly decreasing in this vector.
    segments: Vec<Arc<Segment>>,
    wal: Wal,
}

/// One namespace of the store. Obtain via [`Store::namespace`](crate::Store::namespace).
pub struct Tree {
    name: String,
    /// Unique tag within the store, disambiguating this tree's segments
    /// in the shared block cache.
    cache_tag: u64,
    dir: PathBuf,
    inner: RwLock<TreeInner>,
    cache: Arc<BlockCache>,
    io: IoProfile,
    stats: IoStats,
    cfg: TreeConfig,
    next_segment_id: AtomicU64,
    /// Shared MVCC state (`None` = versioning off, raw keys).
    version: Option<Arc<VersionState>>,
    /// Highest sequence number stamped into this tree (persisted to the
    /// `clock` sidecar on flush so a reopened store can recover the
    /// global clock even after the WAL was reset).
    max_stamped: AtomicU64,
}

impl std::fmt::Debug for Tree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tree")
            .field("name", &self.name)
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl Tree {
    /// Open (creating or recovering) the tree stored under `dir`.
    pub fn open(
        name: &str,
        cache_tag: u64,
        dir: PathBuf,
        cache: Arc<BlockCache>,
        io: IoProfile,
        cfg: TreeConfig,
    ) -> Result<Tree> {
        Tree::open_versioned(name, cache_tag, dir, cache, io, cfg, None)
    }

    /// Open with optional MVCC state. With `Some`, recovery re-observes
    /// the highest stamped sequence (WAL suffixes plus the `clock`
    /// sidecar) into the shared clock so fresh allocations never collide
    /// with stamps already on disk.
    pub fn open_versioned(
        name: &str,
        cache_tag: u64,
        dir: PathBuf,
        cache: Arc<BlockCache>,
        io: IoProfile,
        cfg: TreeConfig,
        version: Option<Arc<VersionState>>,
    ) -> Result<Tree> {
        std::fs::create_dir_all(&dir)?;
        // Discover existing segments (ignoring temp files from crashed
        // flushes) and open them newest-first.
        let mut seg_ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let fname = entry.file_name();
            let fname = fname.to_string_lossy();
            if let Some(idstr) = fname
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".sst"))
            {
                if let Ok(id) = idstr.parse::<u64>() {
                    seg_ids.push(id);
                }
            } else if fname.ends_with(".tmp") {
                std::fs::remove_file(entry.path()).ok();
            }
        }
        seg_ids.sort_unstable_by(|a, b| b.cmp(a));
        let mut segments = Vec::with_capacity(seg_ids.len());
        for id in &seg_ids {
            segments.push(Arc::new(Segment::open(
                &dir.join(format!("seg-{id}.sst")),
                *id,
            )?));
        }
        let next_id = seg_ids.first().map_or(1, |m| m + 1);
        // Recover the memtable from the WAL.
        let wal_path = dir.join("wal.log");
        let replay = wal::replay(&wal_path)?;
        let mut memtable = MemTable::new();
        let mut max_stamped = 0u64;
        for batch in replay.batches {
            for op in batch {
                if version.is_some() {
                    let key = match &op {
                        BatchOp::Put { key, .. } => key,
                        BatchOp::Delete { key } => key,
                    };
                    if let Some((_, seq)) = version::split_suffixed(key) {
                        max_stamped = max_stamped.max(seq);
                    }
                }
                match op {
                    BatchOp::Put { key, value } => memtable.put(key, value),
                    BatchOp::Delete { key } => memtable.delete(key),
                }
            }
        }
        if let Some(vs) = &version {
            // Flushed stamps live only in segments; the sidecar written at
            // each flush carries their maximum across restarts.
            if let Ok(raw) = std::fs::read(dir.join("clock")) {
                if let Ok(bytes) = <[u8; 8]>::try_from(raw.as_slice()) {
                    max_stamped = max_stamped.max(u64::from_le_bytes(bytes));
                }
            }
            vs.observe_seq(max_stamped);
        }
        let wal = Wal::open(&wal_path, cfg.sync_wal)?;
        Ok(Tree {
            name: name.to_string(),
            cache_tag,
            dir,
            inner: RwLock::new(TreeInner {
                memtable,
                segments,
                wal,
            }),
            cache,
            io,
            stats: IoStats::default(),
            cfg,
            next_segment_id: AtomicU64::new(next_id),
            version,
            max_stamped: AtomicU64::new(max_stamped),
        })
    }

    /// Namespace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Point lookup; `None` when absent or deleted.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        let inner = self.inner.read();
        if let Some(hit) = inner.memtable.get(key) {
            self.io.charge(AccessKind::Warm);
            self.stats
                .record(AccessKind::Warm, hit.as_ref().map_or(0, |b| b.len()));
            return Ok(hit);
        }
        for seg in &inner.segments {
            if let Some(hit) = seg.get(self.cache_tag, key, &self.cache, &self.io, &self.stats)? {
                return Ok(hit);
            }
        }
        Ok(None)
    }

    /// Insert or overwrite one key.
    pub fn put(&self, key: impl Into<Vec<u8>>, value: impl Into<Bytes>) -> Result<()> {
        let mut b = WriteBatch::with_capacity(1);
        b.put(key.into(), value.into());
        self.write_batch(b)
    }

    /// Delete one key.
    pub fn delete(&self, key: impl Into<Vec<u8>>) -> Result<()> {
        let mut b = WriteBatch::with_capacity(1);
        b.delete(key.into());
        self.write_batch(b)
    }

    /// Apply a batch atomically (single WAL record).
    pub fn write_batch(&self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.write();
        inner.wal.append(&batch)?;
        self.stats.record_write(batch.encoded_size());
        for op in batch {
            match op {
                BatchOp::Put { key, value } => inner.memtable.put(key, value),
                BatchOp::Delete { key } => inner.memtable.delete(key),
            }
        }
        if inner.memtable.approx_bytes() >= self.cfg.memtable_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Apply a batch atomically with every key stamped at sequence
    /// number `seq` (versioned internal keys). The suffix is applied
    /// before the WAL append, so replay reproduces identical stamps.
    /// Deletes become tombstone *versions* — a new suffixed key — so
    /// older views still see the prior value.
    pub fn write_batch_at(&self, batch: WriteBatch, seq: u64) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut stamped = WriteBatch::with_capacity(batch.len());
        for op in batch {
            match op {
                BatchOp::Put { mut key, value } => {
                    version::suffix_key(&mut key, seq);
                    stamped.put(key, value);
                }
                BatchOp::Delete { mut key } => {
                    version::suffix_key(&mut key, seq);
                    stamped.delete(key);
                }
            }
        }
        self.max_stamped.fetch_max(seq, Ordering::Relaxed);
        self.write_batch(stamped)
    }

    /// Versioned point lookup: the newest version of `ukey` with
    /// `stamp <= view.seq`; `None` when absent at (or deleted as of)
    /// that view.
    pub fn get_at(&self, ukey: &[u8], view: ReadView) -> Result<Option<Bytes>> {
        let inner = self.inner.read();
        let versions = self.merge_raw(&inner, ukey, &self.io)?;
        let mut winner: Option<(u64, Option<Bytes>)> = None;
        let mut saw_newer = false;
        for (k, v) in &versions {
            if k.len() != ukey.len() + version::SUFFIX_LEN {
                continue; // a longer user key sharing the prefix
            }
            let Some((_, seq)) = version::split_suffixed(k) else {
                continue;
            };
            if seq > view.seq {
                saw_newer = true;
                continue;
            }
            if winner.as_ref().is_none_or(|(w, _)| seq > *w) {
                winner = Some((seq, v.clone()));
            }
        }
        if saw_newer {
            if let Some(vs) = &self.version {
                vs.stats.stale_seq_reads.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(winner.and_then(|(_, v)| v))
    }

    /// Versioned ordered scan: for every user key starting with
    /// `prefix`, the newest version with `stamp <= view.seq`, suffix
    /// stripped; tombstone winners are dropped.
    pub fn scan_prefix_at(&self, prefix: &[u8], view: ReadView) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let inner = self.inner.read();
        let merged = self.merge_raw(&inner, prefix, &self.io)?;
        drop(inner);
        let mut out: Vec<(Vec<u8>, Bytes)> = Vec::new();
        let mut saw_newer = false;
        // Versions of one user key are adjacent with the newest first
        // (inverted suffix), so the first visible entry per group wins.
        let mut current: Option<Vec<u8>> = None;
        for (k, v) in &merged {
            let Some((ukey, seq)) = version::split_suffixed(k) else {
                continue;
            };
            if current.as_deref() == Some(ukey) {
                continue; // this group already resolved
            }
            if seq > view.seq {
                saw_newer = true;
                continue;
            }
            current = Some(ukey.to_vec());
            if let Some(v) = v {
                out.push((ukey.to_vec(), v.clone()));
            }
        }
        if saw_newer {
            if let Some(vs) = &self.version {
                vs.stats.stale_seq_reads.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(out)
    }

    /// Merged raw view of every layer under `prefix` — full internal
    /// keys, tombstones included, memtable shadowing segments.
    fn merge_raw(
        &self,
        inner: &TreeInner,
        prefix: &[u8],
        io: &IoProfile,
    ) -> Result<BTreeMap<Vec<u8>, Option<Bytes>>> {
        let mut merged: BTreeMap<Vec<u8>, Option<Bytes>> = BTreeMap::new();
        let mut scratch = Vec::new();
        for seg in inner.segments.iter().rev() {
            scratch.clear();
            seg.scan_prefix(
                self.cache_tag,
                prefix,
                &self.cache,
                io,
                &self.stats,
                &mut scratch,
            )?;
            for (k, v) in scratch.drain(..) {
                merged.insert(k, v);
            }
        }
        for (k, v) in inner.memtable.scan_prefix(prefix) {
            io.charge(AccessKind::Warm);
            self.stats
                .record(AccessKind::Warm, v.map_or(0, |b| b.len()));
            merged.insert(k.to_vec(), v.cloned());
        }
        Ok(merged)
    }

    /// Ordered scan of all live entries whose key starts with `prefix`.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let inner = self.inner.read();
        // Merge newest-wins: start from the oldest segment and overwrite.
        let merged = self.merge_raw(&inner, prefix, &self.io)?;
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Flush the memtable to a new segment (no-op when empty).
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut TreeInner) -> Result<()> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let final_path = self.dir.join(format!("seg-{id}.sst"));
        let tmp_path = self.dir.join(format!("seg-{id}.sst.tmp"));
        let mut builder =
            SegmentBuilder::create(&tmp_path, inner.memtable.len(), self.cfg.bloom_bits_per_key)?;
        let mut written = 0usize;
        for (k, v) in inner.memtable.iter() {
            builder.add(k, v)?;
            written += k.len() + v.map_or(0, |b| b.len());
        }
        // finish() opens the tmp path; rename then reopen at the real path.
        let seg = builder.finish(id)?;
        drop(seg);
        std::fs::rename(&tmp_path, &final_path)?;
        let seg = Segment::open(&final_path, id)?;
        self.stats.record_write(written);
        inner.segments.insert(0, Arc::new(seg));
        inner.memtable.clear();
        if self.version.is_some() {
            // The WAL reset below erases the only recoverable record of
            // the stamps now living in segments; persist their maximum
            // first so a reopen can restore the clock.
            std::fs::write(
                self.dir.join("clock"),
                self.max_stamped.load(Ordering::Relaxed).to_le_bytes(),
            )?;
        }
        inner.wal.reset()?;
        if self.cfg.auto_compact_segments > 0
            && inner.segments.len() >= self.cfg.auto_compact_segments
        {
            self.compact_locked(inner)?;
        }
        Ok(())
    }

    /// Merge every segment (after flushing the memtable) into one, dropping
    /// shadowed versions and tombstones.
    pub fn compact(&self) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.memtable.is_empty() {
            self.flush_locked(&mut inner)?;
        }
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut TreeInner) -> Result<()> {
        if inner.segments.len() <= 1 {
            return Ok(());
        }
        if let Some(vs) = &self.version {
            if vs.min_pinned().is_some() {
                // A live view could still read a version this merge
                // would drop; defer entirely until the pins drain.
                vs.stats
                    .compactions_deferred
                    .fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        // Newest-wins merge of all segments.
        let mut merged: BTreeMap<Vec<u8>, Option<Bytes>> = BTreeMap::new();
        let mut scratch = Vec::new();
        // Compaction is maintenance I/O, not a modeled query access: use a
        // free profile so experiments are not distorted by setup work.
        let free = IoProfile::free();
        for seg in inner.segments.iter().rev() {
            scratch.clear();
            seg.scan_prefix(
                self.cache_tag,
                b"",
                &self.cache,
                &free,
                &self.stats,
                &mut scratch,
            )?;
            for (k, v) in scratch.drain(..) {
                merged.insert(k, v);
            }
        }
        // With versioning on, keep only the newest version of each user
        // key (its stamped key intact, so `as_of` that seq still
        // resolves); shadowed versions and tombstone winners drop. With
        // no pinned view this is exactly the unversioned contract.
        if self.version.is_some() {
            let mut newest_of: Option<Vec<u8>> = None;
            merged.retain(|k, _| match version::split_suffixed(k) {
                Some((ukey, _)) => {
                    if newest_of.as_deref() == Some(ukey) {
                        false
                    } else {
                        newest_of = Some(ukey.to_vec());
                        true
                    }
                }
                None => true,
            });
        }
        let live: Vec<(&Vec<u8>, &Bytes)> = merged
            .iter()
            .filter_map(|(k, v)| v.as_ref().map(|v| (k, v)))
            .collect();
        let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let final_path = self.dir.join(format!("seg-{id}.sst"));
        let tmp_path = self.dir.join(format!("seg-{id}.sst.tmp"));
        let old: Vec<Arc<Segment>> = std::mem::take(&mut inner.segments);
        if live.is_empty() {
            // Everything was deleted; no new segment needed.
            for seg in &old {
                self.cache.invalidate_segment(self.cache_tag, seg.id);
                std::fs::remove_file(seg.path()).ok();
            }
            return Ok(());
        }
        let mut builder =
            SegmentBuilder::create(&tmp_path, live.len(), self.cfg.bloom_bits_per_key)?;
        for (k, v) in live {
            builder.add(k, Some(v))?;
        }
        drop(builder.finish(id)?);
        std::fs::rename(&tmp_path, &final_path)?;
        let seg = Segment::open(&final_path, id)?;
        inner.segments = vec![Arc::new(seg)];
        for seg in &old {
            self.cache.invalidate_segment(self.cache_tag, seg.id);
            std::fs::remove_file(seg.path()).ok();
        }
        Ok(())
    }

    /// Every live entry of the namespace, newest-wins across memtable and
    /// segments. Charged as maintenance I/O (free profile), like
    /// compaction: shard-migration snapshot export must not distort the
    /// modeled query cost.
    pub fn export_all(&self) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let inner = self.inner.read();
        let mut merged: BTreeMap<Vec<u8>, Option<Bytes>> = BTreeMap::new();
        let mut scratch = Vec::new();
        let free = IoProfile::free();
        for seg in inner.segments.iter().rev() {
            scratch.clear();
            seg.scan_prefix(
                self.cache_tag,
                b"",
                &self.cache,
                &free,
                &self.stats,
                &mut scratch,
            )?;
            for (k, v) in scratch.drain(..) {
                merged.insert(k, v);
            }
        }
        for (k, v) in inner.memtable.scan_prefix(b"") {
            merged.insert(k.to_vec(), v.cloned());
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Every entry of the namespace as raw internal keys — all versions
    /// and tombstones included. This is the migration/re-replication
    /// export under versioning: stamps and tombstone versions must
    /// arrive intact on the target or a pinned mid-travel view would
    /// resolve differently there. Maintenance I/O (free profile).
    pub fn export_raw(&self) -> Result<Vec<(Vec<u8>, Option<Bytes>)>> {
        let inner = self.inner.read();
        let free = IoProfile::free();
        let merged = self.merge_raw(&inner, b"", &free)?;
        Ok(merged.into_iter().collect())
    }

    /// Receiving side of [`Tree::export_raw`]: build one immutable
    /// segment carrying the pairs verbatim, tombstones included, without
    /// re-stamping. Stamps found on the keys are folded into the clock.
    pub fn import_raw(&self, mut pairs: Vec<(Vec<u8>, Option<Bytes>)>) -> Result<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs.dedup_by(|a, b| a.0 == b.0);
        if let Some(vs) = &self.version {
            let mut max_seq = 0u64;
            for (k, _) in &pairs {
                if let Some((_, seq)) = version::split_suffixed(k) {
                    max_seq = max_seq.max(seq);
                }
            }
            vs.observe_seq(max_seq);
            self.max_stamped.fetch_max(max_seq, Ordering::Relaxed);
            std::fs::write(
                self.dir.join("clock"),
                self.max_stamped.load(Ordering::Relaxed).to_le_bytes(),
            )?;
        }
        let mut inner = self.inner.write();
        let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let final_path = self.dir.join(format!("seg-{id}.sst"));
        let tmp_path = self.dir.join(format!("seg-{id}.sst.tmp"));
        let mut builder =
            SegmentBuilder::create(&tmp_path, pairs.len(), self.cfg.bloom_bits_per_key)?;
        let mut written = 0usize;
        for (k, v) in &pairs {
            builder.add(k, v.as_ref())?;
            written += k.len() + v.as_ref().map_or(0, |v| v.len());
        }
        drop(builder.finish(id)?);
        std::fs::rename(&tmp_path, &final_path)?;
        let seg = Segment::open(&final_path, id)?;
        self.stats.record_write(written);
        inner.segments.insert(0, Arc::new(seg));
        if self.cfg.auto_compact_segments > 0
            && inner.segments.len() >= self.cfg.auto_compact_segments
        {
            self.compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Import a snapshot chunk directly as one immutable segment,
    /// bypassing the WAL and memtable — the receiving side of a shard
    /// migration. Pairs need not be sorted; later duplicates within the
    /// chunk lose to earlier ones after the stable sort. Entries already
    /// present in the memtable still shadow the imported segment.
    pub fn import_bulk(&self, mut pairs: Vec<(Vec<u8>, Bytes)>) -> Result<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs.dedup_by(|a, b| a.0 == b.0);
        if let Some(vs) = &self.version {
            // Imported keys arrive pre-stamped (migration ships raw
            // internal keys); fold their stamps into the clock and the
            // sidecar so they stay authoritative after a restart.
            let mut max_seq = 0u64;
            for (k, _) in &pairs {
                if let Some((_, seq)) = version::split_suffixed(k) {
                    max_seq = max_seq.max(seq);
                }
            }
            vs.observe_seq(max_seq);
            self.max_stamped.fetch_max(max_seq, Ordering::Relaxed);
            std::fs::write(
                self.dir.join("clock"),
                self.max_stamped.load(Ordering::Relaxed).to_le_bytes(),
            )?;
        }
        let mut inner = self.inner.write();
        let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let final_path = self.dir.join(format!("seg-{id}.sst"));
        let tmp_path = self.dir.join(format!("seg-{id}.sst.tmp"));
        let mut builder =
            SegmentBuilder::create(&tmp_path, pairs.len(), self.cfg.bloom_bits_per_key)?;
        let mut written = 0usize;
        for (k, v) in &pairs {
            builder.add(k, Some(v))?;
            written += k.len() + v.len();
        }
        drop(builder.finish(id)?);
        std::fs::rename(&tmp_path, &final_path)?;
        let seg = Segment::open(&final_path, id)?;
        self.stats.record_write(written);
        inner.segments.insert(0, Arc::new(seg));
        if self.cfg.auto_compact_segments > 0
            && inner.segments.len() >= self.cfg.auto_compact_segments
        {
            self.compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Number of on-disk segments (diagnostics).
    pub fn n_segments(&self) -> usize {
        self.inner.read().segments.len()
    }

    /// Number of entries currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.inner.read().memtable.len()
    }

    /// I/O statistics accumulated by this tree.
    pub fn io_stats(&self) -> crate::iomodel::IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// The I/O cost profile this tree charges.
    pub fn io_profile(&self) -> IoProfile {
        self.io
    }

    /// The shared block cache (e.g. to clear it for cold-start runs).
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_tmp(name: &str) -> (Tree, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "gtkv-tree-{}-{name}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let tree = Tree::open(
            name,
            0,
            dir.clone(),
            Arc::new(BlockCache::new(64)),
            IoProfile::free(),
            TreeConfig {
                memtable_bytes: 1 << 16,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        (tree, dir)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (t, dir) = open_tmp("basic");
        t.put(b"k1".to_vec(), Bytes::from_static(b"v1")).unwrap();
        assert_eq!(t.get(b"k1").unwrap(), Some(Bytes::from_static(b"v1")));
        t.delete(b"k1".to_vec()).unwrap();
        assert_eq!(t.get(b"k1").unwrap(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn flush_and_read_from_segment() {
        let (t, dir) = open_tmp("flush");
        for i in 0..100u32 {
            t.put(
                format!("key-{i:04}").into_bytes(),
                Bytes::from(format!("val-{i}")),
            )
            .unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.memtable_len(), 0);
        assert_eq!(t.n_segments(), 1);
        assert_eq!(
            t.get(b"key-0042").unwrap(),
            Some(Bytes::from_static(b"val-42"))
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn memtable_shadows_segment() {
        let (t, dir) = open_tmp("shadow");
        t.put(b"k".to_vec(), Bytes::from_static(b"old")).unwrap();
        t.flush().unwrap();
        t.put(b"k".to_vec(), Bytes::from_static(b"new")).unwrap();
        assert_eq!(t.get(b"k").unwrap(), Some(Bytes::from_static(b"new")));
        // Tombstone in memtable shadows segment value.
        t.delete(b"k".to_vec()).unwrap();
        assert_eq!(t.get(b"k").unwrap(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn newer_segment_shadows_older() {
        let (t, dir) = open_tmp("segshadow");
        t.put(b"k".to_vec(), Bytes::from_static(b"v1")).unwrap();
        t.flush().unwrap();
        t.put(b"k".to_vec(), Bytes::from_static(b"v2")).unwrap();
        t.flush().unwrap();
        assert_eq!(t.n_segments(), 2);
        assert_eq!(t.get(b"k").unwrap(), Some(Bytes::from_static(b"v2")));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn scan_merges_all_layers() {
        let (t, dir) = open_tmp("scanmerge");
        t.put(b"p/a".to_vec(), Bytes::from_static(b"1")).unwrap();
        t.put(b"p/b".to_vec(), Bytes::from_static(b"2")).unwrap();
        t.flush().unwrap();
        t.put(b"p/b".to_vec(), Bytes::from_static(b"2new")).unwrap();
        t.put(b"p/c".to_vec(), Bytes::from_static(b"3")).unwrap();
        t.delete(b"p/a".to_vec()).unwrap();
        let got = t.scan_prefix(b"p/").unwrap();
        let got: Vec<(String, String)> = got
            .into_iter()
            .map(|(k, v)| {
                (
                    String::from_utf8(k).unwrap(),
                    String::from_utf8(v.to_vec()).unwrap(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("p/b".to_string(), "2new".to_string()),
                ("p/c".to_string(), "3".to_string())
            ]
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compaction_merges_and_drops_tombstones() {
        let (t, dir) = open_tmp("compact");
        for i in 0..50u32 {
            t.put(
                format!("k{i:03}").into_bytes(),
                Bytes::from(format!("v{i}")),
            )
            .unwrap();
        }
        t.flush().unwrap();
        for i in 0..25u32 {
            t.delete(format!("k{i:03}").into_bytes()).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.n_segments(), 2);
        t.compact().unwrap();
        assert_eq!(t.n_segments(), 1);
        assert_eq!(t.get(b"k010").unwrap(), None);
        assert_eq!(t.get(b"k030").unwrap(), Some(Bytes::from_static(b"v30")));
        assert_eq!(t.scan_prefix(b"k").unwrap().len(), 25);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compact_all_deleted_leaves_no_segment() {
        let (t, dir) = open_tmp("compactempty");
        t.put(b"a".to_vec(), Bytes::from_static(b"1")).unwrap();
        t.flush().unwrap();
        t.delete(b"a".to_vec()).unwrap();
        t.compact().unwrap();
        assert_eq!(t.n_segments(), 0);
        assert_eq!(t.get(b"a").unwrap(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reopen_recovers_wal_and_segments() {
        let dir = std::env::temp_dir().join(format!("gtkv-tree-reopen-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = TreeConfig::default();
        {
            let t = Tree::open(
                "ns",
                0,
                dir.clone(),
                Arc::new(BlockCache::new(64)),
                IoProfile::free(),
                cfg.clone(),
            )
            .unwrap();
            t.put(b"in-segment".to_vec(), Bytes::from_static(b"s"))
                .unwrap();
            t.flush().unwrap();
            t.put(b"in-wal".to_vec(), Bytes::from_static(b"w")).unwrap();
            // Dropped without flushing: `in-wal` lives only in the WAL.
        }
        let t = Tree::open(
            "ns",
            0,
            dir.clone(),
            Arc::new(BlockCache::new(64)),
            IoProfile::free(),
            cfg,
        )
        .unwrap();
        assert_eq!(
            t.get(b"in-segment").unwrap(),
            Some(Bytes::from_static(b"s"))
        );
        assert_eq!(t.get(b"in-wal").unwrap(), Some(Bytes::from_static(b"w")));
        assert_eq!(t.memtable_len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn auto_flush_on_memtable_budget() {
        let (t, dir) = open_tmp("autoflush");
        // memtable_bytes is 64 KiB in open_tmp; write well past it.
        let big = Bytes::from(vec![7u8; 1024]);
        for i in 0..200u32 {
            t.put(format!("k{i:05}").into_bytes(), big.clone()).unwrap();
        }
        assert!(t.n_segments() >= 1, "memtable budget should trigger flush");
        assert_eq!(t.get(b"k00000").unwrap(), Some(big));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn export_import_roundtrip_across_trees() {
        let (src, sdir) = open_tmp("exp-src");
        for i in 0..200u32 {
            src.put(
                format!("k{i:04}").into_bytes(),
                Bytes::from(format!("v{i}")),
            )
            .unwrap();
        }
        src.flush().unwrap();
        src.put(b"k0001".to_vec(), Bytes::from_static(b"newer"))
            .unwrap();
        src.delete(b"k0002".to_vec()).unwrap();
        let dump = src.export_all().unwrap();
        assert_eq!(dump.len(), 199, "tombstone must be excluded");
        assert!(dump.windows(2).all(|w| w[0].0 < w[1].0));

        let (dst, ddir) = open_tmp("exp-dst");
        dst.import_bulk(dump).unwrap();
        assert_eq!(
            dst.get(b"k0001").unwrap(),
            Some(Bytes::from_static(b"newer"))
        );
        assert_eq!(dst.get(b"k0002").unwrap(), None);
        assert_eq!(
            dst.get(b"k0100").unwrap(),
            Some(Bytes::from_static(b"v100"))
        );
        assert_eq!(dst.memtable_len(), 0, "import must bypass the memtable");
        std::fs::remove_dir_all(sdir).ok();
        std::fs::remove_dir_all(ddir).ok();
    }

    #[test]
    fn import_bulk_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("gtkv-tree-impreopen-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = TreeConfig::default();
        {
            let t = Tree::open(
                "ns",
                0,
                dir.clone(),
                Arc::new(BlockCache::new(64)),
                IoProfile::free(),
                cfg.clone(),
            )
            .unwrap();
            t.import_bulk(vec![(b"a".to_vec(), Bytes::from_static(b"1"))])
                .unwrap();
        }
        let t = Tree::open(
            "ns",
            0,
            dir.clone(),
            Arc::new(BlockCache::new(64)),
            IoProfile::free(),
            cfg,
        )
        .unwrap();
        assert_eq!(t.get(b"a").unwrap(), Some(Bytes::from_static(b"1")));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_batch_is_noop() {
        let (t, dir) = open_tmp("emptybatch");
        t.write_batch(WriteBatch::new()).unwrap();
        assert_eq!(t.memtable_len(), 0);
        std::fs::remove_dir_all(dir).ok();
    }

    fn open_tmp_versioned(name: &str, vs: Arc<VersionState>) -> (Tree, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "gtkv-vtree-{}-{name}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let tree = Tree::open_versioned(
            name,
            0,
            dir.clone(),
            Arc::new(BlockCache::new(64)),
            IoProfile::free(),
            TreeConfig {
                memtable_bytes: 1 << 16,
                auto_compact_segments: 0,
                ..TreeConfig::default()
            },
            Some(vs),
        )
        .unwrap();
        (tree, dir)
    }

    fn vstate() -> Arc<VersionState> {
        Arc::new(VersionState::new(Arc::new(AtomicU64::new(0))))
    }

    fn put_at(t: &Tree, key: &[u8], val: &str, seq: u64) {
        let mut b = WriteBatch::new();
        b.put(key.to_vec(), Bytes::copy_from_slice(val.as_bytes()));
        t.write_batch_at(b, seq).unwrap();
    }

    fn del_at(t: &Tree, key: &[u8], seq: u64) {
        let mut b = WriteBatch::new();
        b.delete(key.to_vec());
        t.write_batch_at(b, seq).unwrap();
    }

    #[test]
    fn versioned_reads_resolve_against_view() {
        let vs = vstate();
        let (t, dir) = open_tmp_versioned("views", vs.clone());
        put_at(&t, b"k", "v1", 1);
        put_at(&t, b"k", "v2", 5);
        del_at(&t, b"k", 9);
        assert_eq!(t.get_at(b"k", ReadView::at(0)).unwrap(), None);
        assert_eq!(
            t.get_at(b"k", ReadView::at(1)).unwrap(),
            Some(Bytes::from_static(b"v1"))
        );
        assert_eq!(
            t.get_at(b"k", ReadView::at(8)).unwrap(),
            Some(Bytes::from_static(b"v2"))
        );
        assert_eq!(t.get_at(b"k", ReadView::at(9)).unwrap(), None);
        assert_eq!(t.get_at(b"k", ReadView::LATEST).unwrap(), None);
        assert!(vs.stats_snapshot().stale_seq_reads >= 3);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn versioned_reads_span_flushes() {
        let vs = vstate();
        let (t, dir) = open_tmp_versioned("vflush", vs);
        put_at(&t, b"k", "old", 2);
        t.flush().unwrap();
        put_at(&t, b"k", "new", 7);
        assert_eq!(
            t.get_at(b"k", ReadView::at(2)).unwrap(),
            Some(Bytes::from_static(b"old"))
        );
        assert_eq!(
            t.get_at(b"k", ReadView::at(7)).unwrap(),
            Some(Bytes::from_static(b"new"))
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn versioned_scan_groups_and_strips_suffix() {
        let vs = vstate();
        let (t, dir) = open_tmp_versioned("vscan", vs);
        put_at(&t, b"p/a", "a1", 1);
        put_at(&t, b"p/a", "a2", 4);
        put_at(&t, b"p/b", "b1", 2);
        del_at(&t, b"p/b", 6);
        put_at(&t, b"p/c", "c1", 5);
        // View at 3: a1 and b1 visible, c not yet created.
        let got = t.scan_prefix_at(b"p/", ReadView::at(3)).unwrap();
        assert_eq!(
            got,
            vec![
                (b"p/a".to_vec(), Bytes::from_static(b"a1")),
                (b"p/b".to_vec(), Bytes::from_static(b"b1")),
            ]
        );
        // Latest: a2 and c1; b deleted.
        let got = t.scan_prefix_at(b"p/", ReadView::LATEST).unwrap();
        assert_eq!(
            got,
            vec![
                (b"p/a".to_vec(), Bytes::from_static(b"a2")),
                (b"p/c".to_vec(), Bytes::from_static(b"c1")),
            ]
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn pinned_view_defers_compaction_and_survives_unpin() {
        let vs = vstate();
        let (t, dir) = open_tmp_versioned("vpin", vs.clone());
        put_at(&t, b"k", "v1", 1);
        t.flush().unwrap();
        put_at(&t, b"k", "v2", 5);
        t.flush().unwrap();
        assert_eq!(t.n_segments(), 2);
        vs.pin(1);
        t.compact().unwrap();
        assert_eq!(t.n_segments(), 2, "compaction must defer under a pin");
        assert_eq!(vs.stats_snapshot().compactions_deferred, 1);
        assert_eq!(
            t.get_at(b"k", ReadView::at(1)).unwrap(),
            Some(Bytes::from_static(b"v1"))
        );
        vs.unpin(1);
        t.compact().unwrap();
        assert_eq!(t.n_segments(), 1);
        // Only the newest version survives, stamp intact.
        assert_eq!(
            t.get_at(b"k", ReadView::at(5)).unwrap(),
            Some(Bytes::from_static(b"v2"))
        );
        assert_eq!(t.get_at(b"k", ReadView::at(4)).unwrap(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn versioned_compaction_drops_tombstone_groups() {
        let vs = vstate();
        let (t, dir) = open_tmp_versioned("vtomb", vs);
        put_at(&t, b"dead", "v", 1);
        t.flush().unwrap();
        del_at(&t, b"dead", 2);
        put_at(&t, b"live", "x", 3);
        t.flush().unwrap();
        t.compact().unwrap();
        assert_eq!(t.n_segments(), 1);
        assert_eq!(t.get_at(b"dead", ReadView::LATEST).unwrap(), None);
        assert_eq!(
            t.get_at(b"live", ReadView::LATEST).unwrap(),
            Some(Bytes::from_static(b"x"))
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn clock_recovers_from_wal_and_sidecar() {
        let dir = std::env::temp_dir().join(format!("gtkv-vtree-clockrec-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = TreeConfig {
            auto_compact_segments: 0,
            ..TreeConfig::default()
        };
        {
            let vs = vstate();
            let t = Tree::open_versioned(
                "ns",
                0,
                dir.clone(),
                Arc::new(BlockCache::new(64)),
                IoProfile::free(),
                cfg.clone(),
                Some(vs),
            )
            .unwrap();
            put_at(&t, b"flushed", "s", 11);
            t.flush().unwrap(); // stamp 11 now only in the sidecar
            put_at(&t, b"walled", "w", 14); // stamp 14 only in the WAL
        }
        let vs = vstate();
        let t = Tree::open_versioned(
            "ns",
            0,
            dir.clone(),
            Arc::new(BlockCache::new(64)),
            IoProfile::free(),
            cfg,
            Some(vs.clone()),
        )
        .unwrap();
        assert_eq!(vs.current_seq(), 14, "clock must cover WAL stamps");
        assert_eq!(
            t.get_at(b"flushed", ReadView::at(11)).unwrap(),
            Some(Bytes::from_static(b"s"))
        );
        // Fresh allocations continue past recovered stamps.
        assert_eq!(vs.alloc_seq(), 15);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sidecar_alone_recovers_flushed_stamps() {
        let dir = std::env::temp_dir().join(format!("gtkv-vtree-sidecar-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = TreeConfig {
            auto_compact_segments: 0,
            ..TreeConfig::default()
        };
        {
            let vs = vstate();
            let t = Tree::open_versioned(
                "ns",
                0,
                dir.clone(),
                Arc::new(BlockCache::new(64)),
                IoProfile::free(),
                cfg.clone(),
                Some(vs),
            )
            .unwrap();
            put_at(&t, b"k", "v", 21);
            t.flush().unwrap(); // WAL reset; only the sidecar knows 21
        }
        let vs = vstate();
        drop(
            Tree::open_versioned(
                "ns",
                0,
                dir.clone(),
                Arc::new(BlockCache::new(64)),
                IoProfile::free(),
                cfg,
                Some(vs.clone()),
            )
            .unwrap(),
        );
        assert_eq!(vs.current_seq(), 21);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn raw_export_import_preserves_versions_and_tombstones() {
        let vs = vstate();
        let (src, sdir) = open_tmp_versioned("vexp-src", vs);
        put_at(&src, b"a", "a1", 1);
        put_at(&src, b"a", "a2", 6);
        put_at(&src, b"gone", "g", 2);
        del_at(&src, b"gone", 4);
        src.flush().unwrap();
        let dump = src.export_raw().unwrap();
        // 2 versions of `a` + put and tombstone versions of `gone`.
        assert_eq!(dump.len(), 4);

        let vs2 = vstate();
        let (dst, ddir) = open_tmp_versioned("vexp-dst", vs2.clone());
        dst.import_raw(dump).unwrap();
        assert_eq!(
            vs2.current_seq(),
            6,
            "import must fold stamps into the clock"
        );
        assert_eq!(
            dst.get_at(b"a", ReadView::at(3)).unwrap(),
            Some(Bytes::from_static(b"a1"))
        );
        assert_eq!(
            dst.get_at(b"a", ReadView::LATEST).unwrap(),
            Some(Bytes::from_static(b"a2"))
        );
        assert_eq!(
            dst.get_at(b"gone", ReadView::at(3)).unwrap(),
            Some(Bytes::from_static(b"g")),
            "pre-delete view must still see the value on the target"
        );
        assert_eq!(
            dst.get_at(b"gone", ReadView::LATEST).unwrap(),
            None,
            "tombstone version must not resurrect on the target"
        );
        std::fs::remove_dir_all(sdir).ok();
        std::fs::remove_dir_all(ddir).ok();
    }

    #[test]
    fn unversioned_tree_has_zero_version_overhead() {
        let (t, dir) = open_tmp("novers");
        t.put(b"k".to_vec(), Bytes::from_static(b"v")).unwrap();
        // Raw key on disk: no suffix, normal get works.
        assert_eq!(t.get(b"k").unwrap(), Some(Bytes::from_static(b"v")));
        std::fs::remove_dir_all(dir).ok();
    }
}
