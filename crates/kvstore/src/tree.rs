//! A single namespace: WAL + memtable + sorted segments.
//!
//! `Tree` is the per-namespace LSM pipeline. Writes go WAL → memtable and
//! are flushed to immutable [`Segment`]s when the memtable exceeds its
//! budget; reads consult the memtable first and then segments newest-first;
//! compaction merges every segment into one, dropping shadowed versions and
//! tombstones. All operations are thread-safe: reads share a read lock,
//! mutations serialize on a write lock (single-writer, like RocksDB's
//! default column-family write path).

use crate::batch::{BatchOp, WriteBatch};
use crate::cache::BlockCache;
use crate::error::Result;
use crate::iomodel::{AccessKind, IoProfile, IoStats};
use crate::memtable::MemTable;
use crate::segment::{Segment, SegmentBuilder};
use crate::wal;
use crate::wal::Wal;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for one tree (normally inherited from the store config).
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Flush the memtable once it holds roughly this many bytes.
    pub memtable_bytes: usize,
    /// Bloom-filter budget for new segments.
    pub bloom_bits_per_key: usize,
    /// Run a full compaction automatically once this many segments exist.
    /// `0` disables auto-compaction.
    pub auto_compact_segments: usize,
    /// fsync the WAL on every write (durability vs throughput).
    pub sync_wal: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            memtable_bytes: 4 << 20,
            bloom_bits_per_key: 10,
            auto_compact_segments: 8,
            sync_wal: false,
        }
    }
}

struct TreeInner {
    memtable: MemTable,
    /// Newest first; ids are strictly decreasing in this vector.
    segments: Vec<Arc<Segment>>,
    wal: Wal,
}

/// One namespace of the store. Obtain via [`Store::namespace`](crate::Store::namespace).
pub struct Tree {
    name: String,
    /// Unique tag within the store, disambiguating this tree's segments
    /// in the shared block cache.
    cache_tag: u64,
    dir: PathBuf,
    inner: RwLock<TreeInner>,
    cache: Arc<BlockCache>,
    io: IoProfile,
    stats: IoStats,
    cfg: TreeConfig,
    next_segment_id: AtomicU64,
}

impl std::fmt::Debug for Tree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tree")
            .field("name", &self.name)
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl Tree {
    /// Open (creating or recovering) the tree stored under `dir`.
    pub fn open(
        name: &str,
        cache_tag: u64,
        dir: PathBuf,
        cache: Arc<BlockCache>,
        io: IoProfile,
        cfg: TreeConfig,
    ) -> Result<Tree> {
        std::fs::create_dir_all(&dir)?;
        // Discover existing segments (ignoring temp files from crashed
        // flushes) and open them newest-first.
        let mut seg_ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let fname = entry.file_name();
            let fname = fname.to_string_lossy();
            if let Some(idstr) = fname
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".sst"))
            {
                if let Ok(id) = idstr.parse::<u64>() {
                    seg_ids.push(id);
                }
            } else if fname.ends_with(".tmp") {
                std::fs::remove_file(entry.path()).ok();
            }
        }
        seg_ids.sort_unstable_by(|a, b| b.cmp(a));
        let mut segments = Vec::with_capacity(seg_ids.len());
        for id in &seg_ids {
            segments.push(Arc::new(Segment::open(
                &dir.join(format!("seg-{id}.sst")),
                *id,
            )?));
        }
        let next_id = seg_ids.first().map_or(1, |m| m + 1);
        // Recover the memtable from the WAL.
        let wal_path = dir.join("wal.log");
        let replay = wal::replay(&wal_path)?;
        let mut memtable = MemTable::new();
        for batch in replay.batches {
            for op in batch {
                match op {
                    BatchOp::Put { key, value } => memtable.put(key, value),
                    BatchOp::Delete { key } => memtable.delete(key),
                }
            }
        }
        let wal = Wal::open(&wal_path, cfg.sync_wal)?;
        Ok(Tree {
            name: name.to_string(),
            cache_tag,
            dir,
            inner: RwLock::new(TreeInner {
                memtable,
                segments,
                wal,
            }),
            cache,
            io,
            stats: IoStats::default(),
            cfg,
            next_segment_id: AtomicU64::new(next_id),
        })
    }

    /// Namespace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Point lookup; `None` when absent or deleted.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        let inner = self.inner.read();
        if let Some(hit) = inner.memtable.get(key) {
            self.io.charge(AccessKind::Warm);
            self.stats
                .record(AccessKind::Warm, hit.as_ref().map_or(0, |b| b.len()));
            return Ok(hit);
        }
        for seg in &inner.segments {
            if let Some(hit) = seg.get(self.cache_tag, key, &self.cache, &self.io, &self.stats)? {
                return Ok(hit);
            }
        }
        Ok(None)
    }

    /// Insert or overwrite one key.
    pub fn put(&self, key: impl Into<Vec<u8>>, value: impl Into<Bytes>) -> Result<()> {
        let mut b = WriteBatch::with_capacity(1);
        b.put(key.into(), value.into());
        self.write_batch(b)
    }

    /// Delete one key.
    pub fn delete(&self, key: impl Into<Vec<u8>>) -> Result<()> {
        let mut b = WriteBatch::with_capacity(1);
        b.delete(key.into());
        self.write_batch(b)
    }

    /// Apply a batch atomically (single WAL record).
    pub fn write_batch(&self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.write();
        inner.wal.append(&batch)?;
        self.stats.record_write(batch.encoded_size());
        for op in batch {
            match op {
                BatchOp::Put { key, value } => inner.memtable.put(key, value),
                BatchOp::Delete { key } => inner.memtable.delete(key),
            }
        }
        if inner.memtable.approx_bytes() >= self.cfg.memtable_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Ordered scan of all live entries whose key starts with `prefix`.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let inner = self.inner.read();
        // Merge newest-wins: start from the oldest segment and overwrite.
        let mut merged: BTreeMap<Vec<u8>, Option<Bytes>> = BTreeMap::new();
        let mut scratch = Vec::new();
        for seg in inner.segments.iter().rev() {
            scratch.clear();
            seg.scan_prefix(
                self.cache_tag,
                prefix,
                &self.cache,
                &self.io,
                &self.stats,
                &mut scratch,
            )?;
            for (k, v) in scratch.drain(..) {
                merged.insert(k, v);
            }
        }
        for (k, v) in inner.memtable.scan_prefix(prefix) {
            self.io.charge(AccessKind::Warm);
            self.stats
                .record(AccessKind::Warm, v.map_or(0, |b| b.len()));
            merged.insert(k.to_vec(), v.cloned());
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Flush the memtable to a new segment (no-op when empty).
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut TreeInner) -> Result<()> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let final_path = self.dir.join(format!("seg-{id}.sst"));
        let tmp_path = self.dir.join(format!("seg-{id}.sst.tmp"));
        let mut builder =
            SegmentBuilder::create(&tmp_path, inner.memtable.len(), self.cfg.bloom_bits_per_key)?;
        let mut written = 0usize;
        for (k, v) in inner.memtable.iter() {
            builder.add(k, v)?;
            written += k.len() + v.map_or(0, |b| b.len());
        }
        // finish() opens the tmp path; rename then reopen at the real path.
        let seg = builder.finish(id)?;
        drop(seg);
        std::fs::rename(&tmp_path, &final_path)?;
        let seg = Segment::open(&final_path, id)?;
        self.stats.record_write(written);
        inner.segments.insert(0, Arc::new(seg));
        inner.memtable.clear();
        inner.wal.reset()?;
        if self.cfg.auto_compact_segments > 0
            && inner.segments.len() >= self.cfg.auto_compact_segments
        {
            self.compact_locked(inner)?;
        }
        Ok(())
    }

    /// Merge every segment (after flushing the memtable) into one, dropping
    /// shadowed versions and tombstones.
    pub fn compact(&self) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.memtable.is_empty() {
            self.flush_locked(&mut inner)?;
        }
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut TreeInner) -> Result<()> {
        if inner.segments.len() <= 1 {
            return Ok(());
        }
        // Newest-wins merge of all segments.
        let mut merged: BTreeMap<Vec<u8>, Option<Bytes>> = BTreeMap::new();
        let mut scratch = Vec::new();
        // Compaction is maintenance I/O, not a modeled query access: use a
        // free profile so experiments are not distorted by setup work.
        let free = IoProfile::free();
        for seg in inner.segments.iter().rev() {
            scratch.clear();
            seg.scan_prefix(
                self.cache_tag,
                b"",
                &self.cache,
                &free,
                &self.stats,
                &mut scratch,
            )?;
            for (k, v) in scratch.drain(..) {
                merged.insert(k, v);
            }
        }
        let live: Vec<(&Vec<u8>, &Bytes)> = merged
            .iter()
            .filter_map(|(k, v)| v.as_ref().map(|v| (k, v)))
            .collect();
        let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let final_path = self.dir.join(format!("seg-{id}.sst"));
        let tmp_path = self.dir.join(format!("seg-{id}.sst.tmp"));
        let old: Vec<Arc<Segment>> = std::mem::take(&mut inner.segments);
        if live.is_empty() {
            // Everything was deleted; no new segment needed.
            for seg in &old {
                self.cache.invalidate_segment(self.cache_tag, seg.id);
                std::fs::remove_file(seg.path()).ok();
            }
            return Ok(());
        }
        let mut builder =
            SegmentBuilder::create(&tmp_path, live.len(), self.cfg.bloom_bits_per_key)?;
        for (k, v) in live {
            builder.add(k, Some(v))?;
        }
        drop(builder.finish(id)?);
        std::fs::rename(&tmp_path, &final_path)?;
        let seg = Segment::open(&final_path, id)?;
        inner.segments = vec![Arc::new(seg)];
        for seg in &old {
            self.cache.invalidate_segment(self.cache_tag, seg.id);
            std::fs::remove_file(seg.path()).ok();
        }
        Ok(())
    }

    /// Every live entry of the namespace, newest-wins across memtable and
    /// segments. Charged as maintenance I/O (free profile), like
    /// compaction: shard-migration snapshot export must not distort the
    /// modeled query cost.
    pub fn export_all(&self) -> Result<Vec<(Vec<u8>, Bytes)>> {
        let inner = self.inner.read();
        let mut merged: BTreeMap<Vec<u8>, Option<Bytes>> = BTreeMap::new();
        let mut scratch = Vec::new();
        let free = IoProfile::free();
        for seg in inner.segments.iter().rev() {
            scratch.clear();
            seg.scan_prefix(
                self.cache_tag,
                b"",
                &self.cache,
                &free,
                &self.stats,
                &mut scratch,
            )?;
            for (k, v) in scratch.drain(..) {
                merged.insert(k, v);
            }
        }
        for (k, v) in inner.memtable.scan_prefix(b"") {
            merged.insert(k.to_vec(), v.cloned());
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Import a snapshot chunk directly as one immutable segment,
    /// bypassing the WAL and memtable — the receiving side of a shard
    /// migration. Pairs need not be sorted; later duplicates within the
    /// chunk lose to earlier ones after the stable sort. Entries already
    /// present in the memtable still shadow the imported segment.
    pub fn import_bulk(&self, mut pairs: Vec<(Vec<u8>, Bytes)>) -> Result<()> {
        if pairs.is_empty() {
            return Ok(());
        }
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs.dedup_by(|a, b| a.0 == b.0);
        let mut inner = self.inner.write();
        let id = self.next_segment_id.fetch_add(1, Ordering::Relaxed);
        let final_path = self.dir.join(format!("seg-{id}.sst"));
        let tmp_path = self.dir.join(format!("seg-{id}.sst.tmp"));
        let mut builder =
            SegmentBuilder::create(&tmp_path, pairs.len(), self.cfg.bloom_bits_per_key)?;
        let mut written = 0usize;
        for (k, v) in &pairs {
            builder.add(k, Some(v))?;
            written += k.len() + v.len();
        }
        drop(builder.finish(id)?);
        std::fs::rename(&tmp_path, &final_path)?;
        let seg = Segment::open(&final_path, id)?;
        self.stats.record_write(written);
        inner.segments.insert(0, Arc::new(seg));
        if self.cfg.auto_compact_segments > 0
            && inner.segments.len() >= self.cfg.auto_compact_segments
        {
            self.compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Number of on-disk segments (diagnostics).
    pub fn n_segments(&self) -> usize {
        self.inner.read().segments.len()
    }

    /// Number of entries currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.inner.read().memtable.len()
    }

    /// I/O statistics accumulated by this tree.
    pub fn io_stats(&self) -> crate::iomodel::IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// The I/O cost profile this tree charges.
    pub fn io_profile(&self) -> IoProfile {
        self.io
    }

    /// The shared block cache (e.g. to clear it for cold-start runs).
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_tmp(name: &str) -> (Tree, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "gtkv-tree-{}-{name}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let tree = Tree::open(
            name,
            0,
            dir.clone(),
            Arc::new(BlockCache::new(64)),
            IoProfile::free(),
            TreeConfig {
                memtable_bytes: 1 << 16,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        (tree, dir)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (t, dir) = open_tmp("basic");
        t.put(b"k1".to_vec(), Bytes::from_static(b"v1")).unwrap();
        assert_eq!(t.get(b"k1").unwrap(), Some(Bytes::from_static(b"v1")));
        t.delete(b"k1".to_vec()).unwrap();
        assert_eq!(t.get(b"k1").unwrap(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn flush_and_read_from_segment() {
        let (t, dir) = open_tmp("flush");
        for i in 0..100u32 {
            t.put(
                format!("key-{i:04}").into_bytes(),
                Bytes::from(format!("val-{i}")),
            )
            .unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.memtable_len(), 0);
        assert_eq!(t.n_segments(), 1);
        assert_eq!(
            t.get(b"key-0042").unwrap(),
            Some(Bytes::from_static(b"val-42"))
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn memtable_shadows_segment() {
        let (t, dir) = open_tmp("shadow");
        t.put(b"k".to_vec(), Bytes::from_static(b"old")).unwrap();
        t.flush().unwrap();
        t.put(b"k".to_vec(), Bytes::from_static(b"new")).unwrap();
        assert_eq!(t.get(b"k").unwrap(), Some(Bytes::from_static(b"new")));
        // Tombstone in memtable shadows segment value.
        t.delete(b"k".to_vec()).unwrap();
        assert_eq!(t.get(b"k").unwrap(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn newer_segment_shadows_older() {
        let (t, dir) = open_tmp("segshadow");
        t.put(b"k".to_vec(), Bytes::from_static(b"v1")).unwrap();
        t.flush().unwrap();
        t.put(b"k".to_vec(), Bytes::from_static(b"v2")).unwrap();
        t.flush().unwrap();
        assert_eq!(t.n_segments(), 2);
        assert_eq!(t.get(b"k").unwrap(), Some(Bytes::from_static(b"v2")));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn scan_merges_all_layers() {
        let (t, dir) = open_tmp("scanmerge");
        t.put(b"p/a".to_vec(), Bytes::from_static(b"1")).unwrap();
        t.put(b"p/b".to_vec(), Bytes::from_static(b"2")).unwrap();
        t.flush().unwrap();
        t.put(b"p/b".to_vec(), Bytes::from_static(b"2new")).unwrap();
        t.put(b"p/c".to_vec(), Bytes::from_static(b"3")).unwrap();
        t.delete(b"p/a".to_vec()).unwrap();
        let got = t.scan_prefix(b"p/").unwrap();
        let got: Vec<(String, String)> = got
            .into_iter()
            .map(|(k, v)| {
                (
                    String::from_utf8(k).unwrap(),
                    String::from_utf8(v.to_vec()).unwrap(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("p/b".to_string(), "2new".to_string()),
                ("p/c".to_string(), "3".to_string())
            ]
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compaction_merges_and_drops_tombstones() {
        let (t, dir) = open_tmp("compact");
        for i in 0..50u32 {
            t.put(
                format!("k{i:03}").into_bytes(),
                Bytes::from(format!("v{i}")),
            )
            .unwrap();
        }
        t.flush().unwrap();
        for i in 0..25u32 {
            t.delete(format!("k{i:03}").into_bytes()).unwrap();
        }
        t.flush().unwrap();
        assert_eq!(t.n_segments(), 2);
        t.compact().unwrap();
        assert_eq!(t.n_segments(), 1);
        assert_eq!(t.get(b"k010").unwrap(), None);
        assert_eq!(t.get(b"k030").unwrap(), Some(Bytes::from_static(b"v30")));
        assert_eq!(t.scan_prefix(b"k").unwrap().len(), 25);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compact_all_deleted_leaves_no_segment() {
        let (t, dir) = open_tmp("compactempty");
        t.put(b"a".to_vec(), Bytes::from_static(b"1")).unwrap();
        t.flush().unwrap();
        t.delete(b"a".to_vec()).unwrap();
        t.compact().unwrap();
        assert_eq!(t.n_segments(), 0);
        assert_eq!(t.get(b"a").unwrap(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reopen_recovers_wal_and_segments() {
        let dir = std::env::temp_dir().join(format!("gtkv-tree-reopen-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = TreeConfig::default();
        {
            let t = Tree::open(
                "ns",
                0,
                dir.clone(),
                Arc::new(BlockCache::new(64)),
                IoProfile::free(),
                cfg.clone(),
            )
            .unwrap();
            t.put(b"in-segment".to_vec(), Bytes::from_static(b"s"))
                .unwrap();
            t.flush().unwrap();
            t.put(b"in-wal".to_vec(), Bytes::from_static(b"w")).unwrap();
            // Dropped without flushing: `in-wal` lives only in the WAL.
        }
        let t = Tree::open(
            "ns",
            0,
            dir.clone(),
            Arc::new(BlockCache::new(64)),
            IoProfile::free(),
            cfg,
        )
        .unwrap();
        assert_eq!(
            t.get(b"in-segment").unwrap(),
            Some(Bytes::from_static(b"s"))
        );
        assert_eq!(t.get(b"in-wal").unwrap(), Some(Bytes::from_static(b"w")));
        assert_eq!(t.memtable_len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn auto_flush_on_memtable_budget() {
        let (t, dir) = open_tmp("autoflush");
        // memtable_bytes is 64 KiB in open_tmp; write well past it.
        let big = Bytes::from(vec![7u8; 1024]);
        for i in 0..200u32 {
            t.put(format!("k{i:05}").into_bytes(), big.clone()).unwrap();
        }
        assert!(t.n_segments() >= 1, "memtable budget should trigger flush");
        assert_eq!(t.get(b"k00000").unwrap(), Some(big));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn export_import_roundtrip_across_trees() {
        let (src, sdir) = open_tmp("exp-src");
        for i in 0..200u32 {
            src.put(
                format!("k{i:04}").into_bytes(),
                Bytes::from(format!("v{i}")),
            )
            .unwrap();
        }
        src.flush().unwrap();
        src.put(b"k0001".to_vec(), Bytes::from_static(b"newer"))
            .unwrap();
        src.delete(b"k0002".to_vec()).unwrap();
        let dump = src.export_all().unwrap();
        assert_eq!(dump.len(), 199, "tombstone must be excluded");
        assert!(dump.windows(2).all(|w| w[0].0 < w[1].0));

        let (dst, ddir) = open_tmp("exp-dst");
        dst.import_bulk(dump).unwrap();
        assert_eq!(
            dst.get(b"k0001").unwrap(),
            Some(Bytes::from_static(b"newer"))
        );
        assert_eq!(dst.get(b"k0002").unwrap(), None);
        assert_eq!(
            dst.get(b"k0100").unwrap(),
            Some(Bytes::from_static(b"v100"))
        );
        assert_eq!(dst.memtable_len(), 0, "import must bypass the memtable");
        std::fs::remove_dir_all(sdir).ok();
        std::fs::remove_dir_all(ddir).ok();
    }

    #[test]
    fn import_bulk_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("gtkv-tree-impreopen-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = TreeConfig::default();
        {
            let t = Tree::open(
                "ns",
                0,
                dir.clone(),
                Arc::new(BlockCache::new(64)),
                IoProfile::free(),
                cfg.clone(),
            )
            .unwrap();
            t.import_bulk(vec![(b"a".to_vec(), Bytes::from_static(b"1"))])
                .unwrap();
        }
        let t = Tree::open(
            "ns",
            0,
            dir.clone(),
            Arc::new(BlockCache::new(64)),
            IoProfile::free(),
            cfg,
        )
        .unwrap();
        assert_eq!(t.get(b"a").unwrap(), Some(Bytes::from_static(b"1")));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_batch_is_noop() {
        let (t, dir) = open_tmp("emptybatch");
        t.write_batch(WriteBatch::new()).unwrap();
        assert_eq!(t.memtable_len(), 0);
        std::fs::remove_dir_all(dir).ok();
    }
}
