//! Immutable sorted segment files (SSTable equivalent).
//!
//! A segment is produced by flushing a memtable (or by compaction) and is
//! never modified afterwards. Layout:
//!
//! ```text
//! "GTSG" u32-version
//! entry region:  n_entries * ( u32 klen | key | u32 vlen | value )
//!                vlen == u32::MAX encodes a tombstone
//! index region:  one (klen,key,u64 offset,u32 run_len) per RUN of entries
//! bloom region:  serialized BloomFilter over all keys
//! footer (fixed 40 bytes):
//!     u64 index_off | u64 bloom_off | u64 n_entries | u64 max_key_off
//!     u32 crc32(previous 32 bytes) | "GTSG"
//! ```
//!
//! At open time only the sparse index, the bloom filter and the max key are
//! resident; point reads and scans fetch entry *runs* from disk through the
//! shared [`BlockCache`](crate::cache::BlockCache). Every run fetch charges
//! the tree's [`IoProfile`](crate::iomodel::IoProfile): cold for the initial
//! positioned read, sequential for follow-on runs and per-key scan
//! continuation — this is what makes high-degree vertices genuinely more
//! expensive to visit, the load-imbalance mechanism the paper's evaluation
//! turns on (§VII-A).

use crate::bloom::BloomFilter;
use crate::cache::BlockCache;
use crate::error::{Error, Result};
use crate::iomodel::{AccessKind, IoProfile, IoStats};
use bytes::Bytes;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"GTSG";
const VERSION: u32 = 1;
const TOMBSTONE: u32 = u32::MAX;
/// Number of entries grouped into one run (one sparse-index slot).
pub const RUN_LEN: usize = 16;

/// One decoded entry run, the cache unit.
pub type Run = Arc<Vec<(Vec<u8>, Option<Bytes>)>>;

/// Metadata of one sparse-index slot.
#[derive(Debug, Clone)]
struct IndexEntry {
    first_key: Vec<u8>,
    offset: u64,
    byte_len: u32,
    run_len: u32,
}

/// An open, immutable segment file.
#[derive(Debug)]
pub struct Segment {
    /// Unique id within the owning tree (used as the cache key space).
    pub id: u64,
    path: PathBuf,
    file: File,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
    n_entries: u64,
    max_key: Vec<u8>,
}

/// Streaming writer producing a segment from sorted entries.
pub struct SegmentBuilder {
    writer: BufWriter<File>,
    path: PathBuf,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
    n_entries: u64,
    pos: u64,
    run_first_key: Option<Vec<u8>>,
    run_start: u64,
    run_count: u32,
    last_key: Vec<u8>,
}

impl SegmentBuilder {
    /// Begin writing a segment at `path`, sized for roughly `n_keys` keys.
    pub fn create(
        path: impl Into<PathBuf>,
        n_keys: usize,
        bloom_bits_per_key: usize,
    ) -> Result<Self> {
        let path = path.into();
        let file = File::create(&path)?;
        let mut writer = BufWriter::new(file);
        writer.write_all(MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        Ok(SegmentBuilder {
            writer,
            path,
            index: Vec::new(),
            bloom: BloomFilter::new(n_keys, bloom_bits_per_key),
            n_entries: 0,
            pos: 8,
            run_first_key: None,
            run_start: 8,
            run_count: 0,
            last_key: Vec::new(),
        })
    }

    /// Append one entry; keys must arrive in strictly ascending order.
    pub fn add(&mut self, key: &[u8], value: Option<&Bytes>) -> Result<()> {
        debug_assert!(
            self.n_entries == 0 || key > self.last_key.as_slice(),
            "segment keys must be strictly ascending"
        );
        if self.run_first_key.is_none() {
            self.run_first_key = Some(key.to_vec());
            self.run_start = self.pos;
            self.run_count = 0;
        }
        self.bloom.insert(key);
        self.writer.write_all(&(key.len() as u32).to_le_bytes())?;
        self.writer.write_all(key)?;
        match value {
            Some(v) => {
                self.writer.write_all(&(v.len() as u32).to_le_bytes())?;
                self.writer.write_all(v)?;
                self.pos += 8 + key.len() as u64 + v.len() as u64;
            }
            None => {
                self.writer.write_all(&TOMBSTONE.to_le_bytes())?;
                self.pos += 8 + key.len() as u64;
            }
        }
        self.n_entries += 1;
        self.run_count += 1;
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        if self.run_count as usize >= RUN_LEN {
            self.close_run();
        }
        Ok(())
    }

    fn close_run(&mut self) {
        if let Some(first_key) = self.run_first_key.take() {
            self.index.push(IndexEntry {
                first_key,
                offset: self.run_start,
                byte_len: (self.pos - self.run_start) as u32,
                run_len: self.run_count,
            });
        }
    }

    /// Finish the file and reopen it as a readable [`Segment`].
    pub fn finish(mut self, id: u64) -> Result<Segment> {
        self.close_run();
        let index_off = self.pos;
        for e in &self.index {
            self.writer
                .write_all(&(e.first_key.len() as u32).to_le_bytes())?;
            self.writer.write_all(&e.first_key)?;
            self.writer.write_all(&e.offset.to_le_bytes())?;
            self.writer.write_all(&e.byte_len.to_le_bytes())?;
            self.writer.write_all(&e.run_len.to_le_bytes())?;
            self.pos += 4 + self.index_entry_len(e) as u64;
        }
        let bloom_off = self.pos;
        let bloom_bytes = self.bloom.encode();
        self.writer.write_all(&bloom_bytes)?;
        self.pos += bloom_bytes.len() as u64;
        // Footer.
        let mut footer = Vec::with_capacity(40);
        footer.extend_from_slice(&index_off.to_le_bytes());
        footer.extend_from_slice(&bloom_off.to_le_bytes());
        footer.extend_from_slice(&self.n_entries.to_le_bytes());
        footer.extend_from_slice(&(self.last_key.len() as u64).to_le_bytes());
        let crc = crate::crc32(&footer);
        footer.extend_from_slice(&crc.to_le_bytes());
        footer.extend_from_slice(MAGIC);
        // Max key travels right before the footer so open() can find it.
        self.writer.write_all(&self.last_key)?;
        self.writer.write_all(&footer)?;
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        drop(self.writer);
        Segment::open(&self.path, id)
    }

    fn index_entry_len(&self, e: &IndexEntry) -> usize {
        e.first_key.len() + 8 + 4 + 4
    }
}

impl Segment {
    /// Open an existing segment file, loading index + bloom into memory.
    pub fn open(path: &Path, id: u64) -> Result<Self> {
        let fname = path.display().to_string();
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < 52 {
            return Err(Error::corruption(&fname, "file too short"));
        }
        // Read footer.
        let mut footer = [0u8; 40];
        file.read_exact_at(&mut footer, len - 40)?;
        if &footer[36..40] != MAGIC {
            return Err(Error::corruption(&fname, "bad footer magic"));
        }
        let crc = u32::from_le_bytes(footer[32..36].try_into().unwrap());
        if crate::crc32(&footer[..32]) != crc {
            return Err(Error::corruption(&fname, "bad footer crc"));
        }
        let index_off = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let bloom_off = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let n_entries = u64::from_le_bytes(footer[16..24].try_into().unwrap());
        let max_key_len = u64::from_le_bytes(footer[24..32].try_into().unwrap());
        let mut max_key = vec![0u8; max_key_len as usize];
        file.read_exact_at(&mut max_key, len - 40 - max_key_len)?;
        // Read and decode the index region.
        let index_len = (bloom_off - index_off) as usize;
        let mut index_bytes = vec![0u8; index_len];
        file.read_exact_at(&mut index_bytes, index_off)?;
        let mut index = Vec::new();
        let mut pos = 0usize;
        while pos < index_bytes.len() {
            if pos + 4 > index_bytes.len() {
                return Err(Error::corruption(&fname, "truncated index"));
            }
            let klen = u32::from_le_bytes(index_bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if pos + klen + 16 > index_bytes.len() {
                return Err(Error::corruption(&fname, "truncated index entry"));
            }
            let first_key = index_bytes[pos..pos + klen].to_vec();
            pos += klen;
            let offset = u64::from_le_bytes(index_bytes[pos..pos + 8].try_into().unwrap());
            let byte_len = u32::from_le_bytes(index_bytes[pos + 8..pos + 12].try_into().unwrap());
            let run_len = u32::from_le_bytes(index_bytes[pos + 12..pos + 16].try_into().unwrap());
            pos += 16;
            index.push(IndexEntry {
                first_key,
                offset,
                byte_len,
                run_len,
            });
        }
        // Read bloom region.
        let bloom_len = (len - 40 - max_key_len - bloom_off) as usize;
        let mut bloom_bytes = vec![0u8; bloom_len];
        file.read_exact_at(&mut bloom_bytes, bloom_off)?;
        let bloom = BloomFilter::decode(&bloom_bytes)
            .ok_or_else(|| Error::corruption(&fname, "bad bloom filter"))?;
        // Verify header.
        let mut header = [0u8; 8];
        file.read_exact(&mut header)?;
        if &header[0..4] != MAGIC {
            return Err(Error::corruption(&fname, "bad header magic"));
        }
        Ok(Segment {
            id,
            path: path.to_path_buf(),
            file,
            index,
            bloom,
            n_entries,
            max_key,
        })
    }

    /// Number of entries (including tombstones).
    pub fn n_entries(&self) -> u64 {
        self.n_entries
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Index of the run that could contain `key`, if any.
    fn run_for(&self, key: &[u8]) -> Option<usize> {
        if self.index.is_empty() || key > self.max_key.as_slice() {
            return None;
        }
        match self
            .index
            .binary_search_by(|e| e.first_key.as_slice().cmp(key))
        {
            Ok(i) => Some(i),
            Err(0) => None, // key sorts before the first run
            Err(i) => Some(i - 1),
        }
    }

    /// Fetch (through the cache) and decode run `slot`. `tree` is the
    /// owning tree's cache tag (segment ids restart per tree).
    fn load_run(
        &self,
        tree: u64,
        slot: usize,
        cache: &BlockCache,
        io: &IoProfile,
        stats: &IoStats,
        first_in_chain: bool,
    ) -> Result<(Run, AccessKind)> {
        if let Some(run) = cache.get(tree, self.id, slot as u64) {
            io.charge(AccessKind::Warm);
            stats.record(AccessKind::Warm, 0);
            return Ok((run, AccessKind::Warm));
        }
        let e = &self.index[slot];
        let mut buf = vec![0u8; e.byte_len as usize];
        self.file.read_exact_at(&mut buf, e.offset)?;
        let kind = if first_in_chain {
            AccessKind::Cold
        } else {
            AccessKind::Sequential
        };
        io.charge(kind);
        stats.record(kind, buf.len());
        let run = Arc::new(decode_run(
            &buf,
            e.run_len,
            &self.path.display().to_string(),
        )?);
        cache.insert(tree, self.id, slot as u64, run.clone());
        Ok((run, kind))
    }

    /// Point lookup. `Some(None)` is a tombstone.
    pub fn get(
        &self,
        tree: u64,
        key: &[u8],
        cache: &BlockCache,
        io: &IoProfile,
        stats: &IoStats,
    ) -> Result<Option<Option<Bytes>>> {
        if !self.bloom.may_contain(key) {
            return Ok(None);
        }
        let Some(slot) = self.run_for(key) else {
            return Ok(None);
        };
        let (run, _) = self.load_run(tree, slot, cache, io, stats, true)?;
        match run.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => Ok(Some(run[i].1.clone())),
            Err(_) => Ok(None),
        }
    }

    /// Ordered scan of all entries whose key starts with `prefix`,
    /// tombstones included, appended to `out` as (key, value) pairs.
    pub fn scan_prefix(
        &self,
        tree: u64,
        prefix: &[u8],
        cache: &BlockCache,
        io: &IoProfile,
        stats: &IoStats,
        out: &mut Vec<(Vec<u8>, Option<Bytes>)>,
    ) -> Result<()> {
        if self.index.is_empty() {
            return Ok(());
        }
        // First run that could contain keys >= prefix.
        let start = match self
            .index
            .binary_search_by(|e| e.first_key.as_slice().cmp(prefix))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let mut first = true;
        for slot in start..self.index.len() {
            // If this run starts beyond the prefix range, stop.
            if past_prefix(&self.index[slot].first_key, prefix) {
                break;
            }
            let (run, load_kind) = self.load_run(tree, slot, cache, io, stats, first)?;
            first = false;
            let mut run_done = false;
            for (k, v) in run.iter() {
                if k.as_slice() < prefix {
                    continue;
                }
                if !k.starts_with(prefix) {
                    run_done = true;
                    break;
                }
                // Per-key continuation cost models the disk scanning
                // adjacent entries; a run served from the block cache is
                // memory-speed, so only disk-loaded runs pay it.
                if load_kind != AccessKind::Warm {
                    io.charge(AccessKind::Sequential);
                    stats.record(AccessKind::Sequential, v.as_ref().map_or(0, |b| b.len()));
                }
                out.push((k.clone(), v.clone()));
            }
            if run_done {
                break;
            }
        }
        Ok(())
    }
}

/// True when `key` sorts after every possible key with `prefix`.
fn past_prefix(key: &[u8], prefix: &[u8]) -> bool {
    if prefix.is_empty() {
        return false;
    }
    let n = key.len().min(prefix.len());
    key[..n] > prefix[..n]
}

fn decode_run(buf: &[u8], run_len: u32, fname: &str) -> Result<Vec<(Vec<u8>, Option<Bytes>)>> {
    let mut out = Vec::with_capacity(run_len as usize);
    let mut pos = 0usize;
    for _ in 0..run_len {
        if pos + 4 > buf.len() {
            return Err(Error::corruption(fname, "truncated run entry"));
        }
        let klen = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if pos + klen + 4 > buf.len() {
            return Err(Error::corruption(fname, "truncated run key"));
        }
        let key = buf[pos..pos + klen].to_vec();
        pos += klen;
        let vlen = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap());
        pos += 4;
        if vlen == TOMBSTONE {
            out.push((key, None));
        } else {
            let vlen = vlen as usize;
            if pos + vlen > buf.len() {
                return Err(Error::corruption(fname, "truncated run value"));
            }
            out.push((key, Some(Bytes::copy_from_slice(&buf[pos..pos + vlen]))));
            pos += vlen;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_env(name: &str) -> (PathBuf, BlockCache, IoProfile, IoStats) {
        let d = std::env::temp_dir().join(format!("gtkv-seg-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        (
            d.join("seg-1.sst"),
            BlockCache::new(1024),
            IoProfile::free(),
            IoStats::default(),
        )
    }

    fn build(path: &Path, entries: &[(&str, Option<&str>)]) -> Segment {
        let mut b = SegmentBuilder::create(path, entries.len(), 10).unwrap();
        for (k, v) in entries {
            let v = v.map(|s| Bytes::copy_from_slice(s.as_bytes()));
            b.add(k.as_bytes(), v.as_ref()).unwrap();
        }
        b.finish(1).unwrap()
    }

    #[test]
    fn point_lookup_hits_and_misses() {
        let (p, cache, io, stats) = test_env("point");
        let seg = build(&p, &[("a", Some("1")), ("c", Some("3")), ("e", None)]);
        assert_eq!(seg.n_entries(), 3);
        let got = seg.get(0, b"c", &cache, &io, &stats).unwrap();
        assert_eq!(got, Some(Some(Bytes::from_static(b"3"))));
        // Tombstone is Some(None).
        assert_eq!(seg.get(0, b"e", &cache, &io, &stats).unwrap(), Some(None));
        // Absent keys (before, between, after).
        assert_eq!(seg.get(0, b"0", &cache, &io, &stats).unwrap(), None);
        assert_eq!(seg.get(0, b"b", &cache, &io, &stats).unwrap(), None);
        assert_eq!(seg.get(0, b"z", &cache, &io, &stats).unwrap(), None);
    }

    #[test]
    fn large_segment_spans_many_runs() {
        let (p, cache, io, stats) = test_env("runs");
        let entries: Vec<(String, String)> = (0..1000u32)
            .map(|i| (format!("key-{i:06}"), format!("val-{i}")))
            .collect();
        let mut b = SegmentBuilder::create(&p, entries.len(), 10).unwrap();
        for (k, v) in &entries {
            let v = Bytes::copy_from_slice(v.as_bytes());
            b.add(k.as_bytes(), Some(&v)).unwrap();
        }
        let seg = b.finish(7).unwrap();
        for (k, v) in entries.iter().step_by(37) {
            let got = seg.get(0, k.as_bytes(), &cache, &io, &stats).unwrap();
            assert_eq!(got, Some(Some(Bytes::copy_from_slice(v.as_bytes()))));
        }
    }

    #[test]
    fn reopen_after_build() {
        let (p, cache, io, stats) = test_env("reopen");
        build(&p, &[("k1", Some("v1")), ("k2", Some("v2"))]);
        let seg = Segment::open(&p, 9).unwrap();
        assert_eq!(seg.id, 9);
        assert_eq!(
            seg.get(0, b"k2", &cache, &io, &stats).unwrap(),
            Some(Some(Bytes::from_static(b"v2")))
        );
    }

    #[test]
    fn prefix_scan_collects_range() {
        let (p, cache, io, stats) = test_env("scan");
        let mut entries = Vec::new();
        for i in 0..50u32 {
            entries.push((format!("e/7/read/{i:04}"), format!("x{i}")));
        }
        entries.push(("e/7/run/0001".to_string(), "y".to_string()));
        entries.push(("e/8/read/0000".to_string(), "z".to_string()));
        entries.sort();
        let mut b = SegmentBuilder::create(&p, entries.len(), 10).unwrap();
        for (k, v) in &entries {
            let v = Bytes::copy_from_slice(v.as_bytes());
            b.add(k.as_bytes(), Some(&v)).unwrap();
        }
        let seg = b.finish(1).unwrap();
        let mut out = Vec::new();
        seg.scan_prefix(0, b"e/7/read/", &cache, &io, &stats, &mut out)
            .unwrap();
        assert_eq!(out.len(), 50);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        out.clear();
        seg.scan_prefix(0, b"e/9/", &cache, &io, &stats, &mut out)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn cold_then_warm_accounting() {
        let (p, cache, io, stats) = test_env("accounting");
        let seg = build(&p, &[("a", Some("1")), ("b", Some("2"))]);
        seg.get(0, b"a", &cache, &io, &stats).unwrap();
        let s1 = stats.snapshot();
        assert_eq!(s1.cold, 1);
        // Second read of the same run must be a cache hit.
        seg.get(0, b"b", &cache, &io, &stats).unwrap();
        let s2 = stats.snapshot();
        assert_eq!(s2.cold, 1);
        assert_eq!(s2.warm, 1);
    }

    #[test]
    fn corrupt_footer_detected() {
        let (p, _, _, _) = test_env("corrupt");
        build(&p, &[("a", Some("1"))]);
        let mut data = std::fs::read(&p).unwrap();
        let n = data.len();
        data[n - 20] ^= 0x5A; // inside footer fields
        std::fs::write(&p, &data).unwrap();
        assert!(Segment::open(&p, 1).is_err());
    }

    #[test]
    fn past_prefix_logic() {
        assert!(!past_prefix(b"abc", b"abc"));
        assert!(!past_prefix(b"abcd", b"abc"));
        assert!(past_prefix(b"abd", b"abc"));
        assert!(!past_prefix(b"ab", b"abc"));
        assert!(!past_prefix(b"anything", b""));
    }
}
