//! Crash-recovery and durability scenarios for the kv store.

use bytes::Bytes;
use gt_kvstore::{Store, StoreConfig, WriteBatch};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gtkv-rec-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn batch_is_atomic_across_reopen() {
    let dir = tmp("atomic");
    {
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        let ns = s.namespace("ns").unwrap();
        let mut b = WriteBatch::new();
        b.put(b"a".to_vec(), Bytes::from_static(b"1"))
            .put(b"b".to_vec(), Bytes::from_static(b"2"))
            .delete(b"a".to_vec());
        ns.write_batch(b).unwrap();
        // No flush: everything lives in the WAL.
    }
    let s = Store::open(StoreConfig::new(&dir)).unwrap();
    let ns = s.namespace("ns").unwrap();
    assert_eq!(ns.get(b"a").unwrap(), None, "delete inside batch replayed");
    assert_eq!(ns.get(b"b").unwrap(), Some(Bytes::from_static(b"2")));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn torn_wal_tail_loses_only_last_batch() {
    let dir = tmp("torn");
    {
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        let ns = s.namespace("ns").unwrap();
        ns.put(b"first".to_vec(), Bytes::from_static(b"1")).unwrap();
        ns.put(b"second".to_vec(), Bytes::from_static(b"2"))
            .unwrap();
    }
    // Corrupt the last few bytes of the WAL, as a crash mid-write would.
    let wal = dir.join("ns").join("wal.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - 2).unwrap();
    drop(f);
    let s = Store::open(StoreConfig::new(&dir)).unwrap();
    let ns = s.namespace("ns").unwrap();
    assert_eq!(ns.get(b"first").unwrap(), Some(Bytes::from_static(b"1")));
    assert_eq!(ns.get(b"second").unwrap(), None, "torn tail dropped");
    // The store is fully usable after tail truncation.
    ns.put(b"third".to_vec(), Bytes::from_static(b"3")).unwrap();
    ns.flush().unwrap();
    assert_eq!(ns.get(b"third").unwrap(), Some(Bytes::from_static(b"3")));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn leftover_tmp_segment_is_cleaned_on_open() {
    let dir = tmp("tmpclean");
    {
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        let ns = s.namespace("ns").unwrap();
        ns.put(b"k".to_vec(), Bytes::from_static(b"v")).unwrap();
        ns.flush().unwrap();
    }
    // Simulate a crash between segment write and rename.
    let orphan = dir.join("ns").join("seg-99.sst.tmp");
    std::fs::write(&orphan, b"half-written garbage").unwrap();
    let s = Store::open(StoreConfig::new(&dir)).unwrap();
    let ns = s.namespace("ns").unwrap();
    assert_eq!(ns.get(b"k").unwrap(), Some(Bytes::from_static(b"v")));
    assert!(!orphan.exists(), "orphan tmp file removed at open");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn many_segments_reopen_in_recency_order() {
    let dir = tmp("many-seg");
    {
        let s = Store::open(StoreConfig::new(&dir)).unwrap();
        let ns = s.namespace("ns").unwrap();
        // Ten generations of the same key, flushed each time.
        for gen in 0..10u32 {
            ns.put(b"k".to_vec(), Bytes::from(format!("gen-{gen}")))
                .unwrap();
            ns.flush().unwrap();
        }
        assert!(ns.n_segments() >= 2);
    }
    let s = Store::open(StoreConfig::new(&dir)).unwrap();
    let ns = s.namespace("ns").unwrap();
    assert_eq!(
        ns.get(b"k").unwrap(),
        Some(Bytes::from_static(b"gen-9")),
        "newest segment must win after reopen"
    );
    // Compaction after reopen collapses to one segment, same answer.
    ns.compact().unwrap();
    assert_eq!(ns.n_segments(), 1);
    assert_eq!(ns.get(b"k").unwrap(), Some(Bytes::from_static(b"gen-9")));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn large_values_roundtrip_through_flush_and_compact() {
    let dir = tmp("large");
    let s = Store::open(StoreConfig::new(&dir)).unwrap();
    let ns = s.namespace("ns").unwrap();
    let big = Bytes::from(vec![0xABu8; 1 << 20]); // 1 MiB value
    ns.put(b"big".to_vec(), big.clone()).unwrap();
    ns.put(b"small".to_vec(), Bytes::from_static(b"s")).unwrap();
    ns.flush().unwrap();
    ns.compact().unwrap();
    s.drop_caches();
    assert_eq!(ns.get(b"big").unwrap(), Some(big));
    assert_eq!(ns.get(b"small").unwrap(), Some(Bytes::from_static(b"s")));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn concurrent_readers_and_writer() {
    let dir = tmp("concurrent");
    let s = std::sync::Arc::new(Store::open(StoreConfig::new(&dir)).unwrap());
    let ns = s.namespace("ns").unwrap();
    for i in 0..500u32 {
        ns.put(format!("k{i:04}").into_bytes(), Bytes::from(vec![1u8; 64]))
            .unwrap();
    }
    ns.flush().unwrap();
    std::thread::scope(|scope| {
        // Writer keeps mutating a disjoint key range and flushing.
        let w = ns.clone();
        scope.spawn(move || {
            for i in 0..200u32 {
                w.put(format!("w{i:04}").into_bytes(), Bytes::from_static(b"x"))
                    .unwrap();
                if i % 50 == 0 {
                    w.flush().unwrap();
                }
            }
        });
        for _ in 0..4 {
            let r = ns.clone();
            scope.spawn(move || {
                for i in 0..500u32 {
                    let got = r.get(format!("k{i:04}").as_bytes()).unwrap();
                    assert!(got.is_some(), "stable keys always readable");
                }
                let scan = r.scan_prefix(b"k").unwrap();
                assert_eq!(scan.len(), 500);
            });
        }
    });
    std::fs::remove_dir_all(dir).ok();
}
