//! Property test: the store behaves exactly like a `BTreeMap` model under
//! arbitrary interleavings of puts, deletes, flushes, compactions and
//! reopens.

use bytes::Bytes;
use gt_kvstore::{Store, StoreConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, Vec<u8>),
    Delete(u16),
    Get(u16),
    ScanPrefix(u8),
    Flush,
    Compact,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..32)).prop_map(|(k, v)| Op::Put(k % 512, v)),
        2 => any::<u16>().prop_map(|k| Op::Delete(k % 512)),
        3 => any::<u16>().prop_map(|k| Op::Get(k % 512)),
        1 => any::<u8>().prop_map(Op::ScanPrefix),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

fn key_bytes(k: u16) -> Vec<u8> {
    format!("key/{:03}/{}", k % 64, k).into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn store_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let dir = std::env::temp_dir().join(format!(
            "gtkv-prop-{}-{:x}",
            std::process::id(),
            rand_seed(&ops)
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = StoreConfig::new(&dir);
        cfg.memtable_bytes = 512; // tiny so auto-flush paths get exercised
        cfg.auto_compact_segments = 4;
        let mut store = Store::open(cfg.clone()).unwrap();
        let mut ns = store.namespace("model").unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let key = key_bytes(k);
                    ns.put(key.clone(), Bytes::from(v.clone())).unwrap();
                    model.insert(key, v);
                }
                Op::Delete(k) => {
                    let key = key_bytes(k);
                    ns.delete(key.clone()).unwrap();
                    model.remove(&key);
                }
                Op::Get(k) => {
                    let key = key_bytes(k);
                    let got = ns.get(&key).unwrap().map(|b| b.to_vec());
                    prop_assert_eq!(got, model.get(&key).cloned(), "get mismatch for {:?}", key);
                }
                Op::ScanPrefix(p) => {
                    let prefix = format!("key/{:03}/", p % 64).into_bytes();
                    let got: Vec<(Vec<u8>, Vec<u8>)> = ns
                        .scan_prefix(&prefix)
                        .unwrap()
                        .into_iter()
                        .map(|(k, v)| (k, v.to_vec()))
                        .collect();
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(prefix.clone()..)
                        .take_while(|(k, _)| k.starts_with(&prefix))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want, "scan mismatch for prefix {:?}", prefix);
                }
                Op::Flush => ns.flush().unwrap(),
                Op::Compact => ns.compact().unwrap(),
                Op::Reopen => {
                    drop(ns);
                    drop(store);
                    store = Store::open(cfg.clone()).unwrap();
                    ns = store.namespace("model").unwrap();
                }
            }
        }
        // Final full equivalence check.
        let got: Vec<(Vec<u8>, Vec<u8>)> = ns
            .scan_prefix(b"")
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k, v.to_vec()))
            .collect();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
        drop(ns);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Cheap deterministic hash so each proptest case gets its own directory.
fn rand_seed(ops: &[Op]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for op in ops {
        let tag = match op {
            Op::Put(k, v) => 1u64 ^ ((*k as u64) << 8) ^ (v.len() as u64) << 24,
            Op::Delete(k) => 2u64 ^ ((*k as u64) << 8),
            Op::Get(k) => 3u64 ^ ((*k as u64) << 8),
            Op::ScanPrefix(p) => 4u64 ^ ((*p as u64) << 8),
            Op::Flush => 5,
            Op::Compact => 6,
            Op::Reopen => 7,
        };
        h ^= tag;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
