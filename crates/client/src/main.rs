//! `gt-client` — command-line GraphTrek proto client.
//!
//! ```text
//! gt-client --connect tcp:127.0.0.1:7171 [--tenant NAME] \
//!           [--deadline-ms N] [--metrics] 'v(1).e("run").rtn()'
//! ```

use gt_client::{Client, ClientError};
use gt_proto::SubmitOpts;
use gt_transport::SocketAddrSpec;

fn usage() -> ! {
    eprintln!(
        "usage: gt-client --connect <tcp:HOST:PORT | uds:PATH> [options] [GTRAVEL]\n\
         \n\
         options:\n\
           --tenant NAME       tenant in the hello (default: \"default\")\n\
           --deadline-ms N     per-request deadline\n\
           --metrics           print per-tenant QoS counters and exit\n\
         \n\
         GTRAVEL is a chain in the text grammar, e.g. v(1).e('run').rtn()"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut connect: Option<SocketAddrSpec> = None;
    let mut tenant = "default".to_string();
    let mut deadline_ms: Option<u64> = None;
    let mut metrics = false;
    let mut gtravel: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match SocketAddrSpec::parse(&spec) {
                    Ok(s) => connect = Some(s),
                    Err(e) => {
                        eprintln!("gt-client: bad address `{spec}`: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--tenant" => tenant = args.next().unwrap_or_else(|| usage()),
            "--deadline-ms" => {
                let n = args.next().unwrap_or_else(|| usage());
                match n.parse() {
                    Ok(n) => deadline_ms = Some(n),
                    Err(_) => usage(),
                }
            }
            "--metrics" => metrics = true,
            "--help" | "-h" => usage(),
            q if !q.starts_with('-') && gtravel.is_none() => gtravel = Some(q.to_string()),
            _ => usage(),
        }
    }
    let Some(addr) = connect else { usage() };
    if !metrics && gtravel.is_none() {
        usage();
    }

    let mut client = match Client::connect(&addr, &tenant) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gt-client: connect failed: {e}");
            std::process::exit(1);
        }
    };
    if metrics {
        match client.metrics() {
            Ok(counters) => {
                for (name, value) in counters {
                    println!("{name} {value}");
                }
            }
            Err(e) => {
                eprintln!("gt-client: metrics failed: {e}");
                std::process::exit(1);
            }
        }
        client.close();
        return;
    }
    // gt-lint: allow(unwrap, "checked non-None above")
    let query = gtravel.unwrap();
    match client.run(&query, SubmitOpts { deadline_ms }) {
        Ok(reply) => {
            for (depth, vertices) in &reply.by_depth {
                let ids: Vec<String> = vertices.iter().map(|v| v.to_string()).collect();
                println!("depth {depth}: {}", ids.join(" "));
            }
            eprintln!(
                "{} vertices in {} us ({} executions)",
                reply.vertices().len(),
                reply.elapsed_us,
                reply.progress.created
            );
            client.close();
        }
        Err(ClientError::Travel(e)) => {
            eprintln!("gt-client: travel failed: {e}");
            client.close();
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("gt-client: {e}");
            std::process::exit(1);
        }
    }
}
