#![warn(missing_docs)]

//! GraphTrek proto client: dial a front door over TCP or UDS, negotiate
//! a protocol version, and submit GTravel queries.
//!
//! The client is deliberately dependency-light — [`gt_proto`] for the
//! wire format, [`gt_transport::SocketAddrSpec`] for addressing — so any
//! tool can embed it. One [`Client`] owns one connection; requests are
//! correlated by client-assigned ids, so submissions may be pipelined
//! ([`Client::submit`] then [`Client::wait`]) and complete out of order.

use gt_proto::{
    negotiate, read_frame, send_client, ClientMsg, ProtoError, ServerMsg, SubmitOpts, WireError,
    WireProgress, PROTOCOL_VERSION,
};
use gt_transport::SocketAddrSpec;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (dial, read, write, or mid-stream EOF).
    Io(std::io::Error),
    /// The server's bytes did not decode.
    Proto(ProtoError),
    /// Version negotiation failed: the server supports this range.
    Unsupported {
        /// Oldest protocol version the server accepts.
        min: u16,
        /// Newest protocol version the server accepts.
        max: u16,
    },
    /// The server answered with something the protocol does not allow
    /// in this state.
    Unexpected(String),
    /// The travel itself failed; the typed server-side error.
    Travel(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Unsupported { min, max } => {
                write!(
                    f,
                    "server supports protocol versions {min}..={max}, client speaks {PROTOCOL_VERSION}"
                )
            }
            ClientError::Unexpected(m) => write!(f, "unexpected server message: {m}"),
            ClientError::Travel(e) => write!(f, "travel failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Proto(e) => Some(e),
            ClientError::Travel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One traversal's results.
#[derive(Debug, Clone)]
pub struct TravelReply {
    /// Result vertices grouped by traversal depth.
    pub by_depth: Vec<(u16, Vec<u64>)>,
    /// Final progress totals (created/terminated executions).
    pub progress: WireProgress,
    /// Server-side elapsed time in microseconds.
    pub elapsed_us: u64,
}

impl TravelReply {
    /// All result vertices, deduplicated across depths, ascending.
    pub fn vertices(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .by_depth
            .iter()
            .flat_map(|(_, vs)| vs.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

enum Sock {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Sock::Tcp(s) => s.flush(),
            Sock::Uds(s) => s.flush(),
        }
    }
}

/// A connected, version-negotiated proto client.
pub struct Client {
    sock: Sock,
    next_id: u64,
    /// Terminal responses read while waiting for a different id.
    parked: HashMap<u64, ServerMsg>,
}

impl Client {
    /// Dial `addr`, send the hello for `tenant`, and negotiate versions.
    pub fn connect(addr: &SocketAddrSpec, tenant: &str) -> Result<Client, ClientError> {
        let sock = match addr {
            SocketAddrSpec::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                // Frames are tiny and written prefix-then-payload;
                // Nagle + delayed ACK would cost ~40 ms per write pair.
                let _ = s.set_nodelay(true);
                Sock::Tcp(s)
            }
            SocketAddrSpec::Uds(p) => Sock::Uds(UnixStream::connect(p)?),
        };
        let mut client = Client {
            sock,
            next_id: 1,
            parked: HashMap::new(),
        };
        send_client(
            &mut client.sock,
            &ClientMsg::Hello {
                version: PROTOCOL_VERSION,
                tenant: tenant.to_string(),
            },
        )?;
        match client.read_msg()? {
            ServerMsg::HelloAck { version } => {
                negotiate(version).map_err(|(min, max)| ClientError::Unsupported { min, max })?;
                Ok(client)
            }
            ServerMsg::Unsupported { min, max } => Err(ClientError::Unsupported { min, max }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    fn read_msg(&mut self) -> Result<ServerMsg, ClientError> {
        let frame = read_frame(&mut self.sock)?.ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        Ok(ServerMsg::decode(&frame)?)
    }

    /// Submit a GTravel chain (the text grammar); returns the request id
    /// to pass to [`Client::wait`]. Submissions may be pipelined.
    pub fn submit(&mut self, gtravel: &str, opts: SubmitOpts) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        send_client(
            &mut self.sock,
            &ClientMsg::Submit {
                id,
                gtravel: gtravel.to_string(),
                opts,
            },
        )?;
        Ok(id)
    }

    /// Block until request `id` finishes. Responses for other pipelined
    /// ids read along the way are parked for their own `wait` calls.
    pub fn wait(&mut self, id: u64) -> Result<TravelReply, ClientError> {
        let msg = match self.parked.remove(&id) {
            Some(msg) => msg,
            None => loop {
                let msg = self.read_msg()?;
                match &msg {
                    ServerMsg::Result { id: got, .. } | ServerMsg::Error { id: got, .. } => {
                        if *got == id {
                            break msg;
                        }
                        self.parked.insert(*got, msg);
                    }
                    // Unsolicited progress/handshake frames are
                    // allowed; drop them.
                    ServerMsg::HelloAck { .. }
                    | ServerMsg::Unsupported { .. }
                    | ServerMsg::Progress { .. }
                    | ServerMsg::MetricsReport { .. } => {}
                }
            },
        };
        match msg {
            ServerMsg::Result {
                by_depth,
                progress,
                elapsed_us,
                ..
            } => Ok(TravelReply {
                by_depth,
                progress,
                elapsed_us,
            }),
            ServerMsg::Error { error, .. } => Err(ClientError::Travel(error)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Submit and wait in one call.
    pub fn run(&mut self, gtravel: &str, opts: SubmitOpts) -> Result<TravelReply, ClientError> {
        let id = self.submit(gtravel, opts)?;
        self.wait(id)
    }

    /// Ask for a progress estimate of an in-flight request.
    pub fn progress(&mut self, id: u64) -> Result<WireProgress, ClientError> {
        send_client(&mut self.sock, &ClientMsg::Progress { id })?;
        loop {
            let msg = self.read_msg()?;
            match msg {
                ServerMsg::Progress { id: got, progress } if got == id => return Ok(progress),
                ServerMsg::Result { id: got, .. } | ServerMsg::Error { id: got, .. } => {
                    self.parked.insert(got, msg);
                }
                // Progress for other ids, stray handshake frames: drop.
                ServerMsg::Progress { .. }
                | ServerMsg::HelloAck { .. }
                | ServerMsg::Unsupported { .. }
                | ServerMsg::MetricsReport { .. } => {}
            }
        }
    }

    /// Cancel an in-flight request. The request still completes with a
    /// `Cancelled` error delivered to its [`Client::wait`].
    pub fn cancel(&mut self, id: u64) -> Result<(), ClientError> {
        send_client(&mut self.sock, &ClientMsg::Cancel { id })?;
        Ok(())
    }

    /// Fetch the server's per-tenant QoS counters (flattened
    /// `tenant.counter` names; empty when QoS is off).
    pub fn metrics(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        send_client(&mut self.sock, &ClientMsg::Metrics)?;
        loop {
            let msg = self.read_msg()?;
            match msg {
                ServerMsg::MetricsReport { counters } => return Ok(counters),
                ServerMsg::Result { id, .. } | ServerMsg::Error { id, .. } => {
                    self.parked.insert(id, msg);
                }
                // Unsolicited progress/handshake frames: drop.
                ServerMsg::Progress { .. }
                | ServerMsg::HelloAck { .. }
                | ServerMsg::Unsupported { .. } => {}
            }
        }
    }

    /// Orderly goodbye: the server retires state without counting a
    /// dropped connection.
    pub fn close(mut self) {
        let _ = send_client(&mut self.sock, &ClientMsg::Goodbye);
    }
}
