//! An interactive GTravel shell over a synthetic metadata graph — type
//! the paper's query syntax (§III) directly:
//!
//! ```text
//! gtravel> v(0).e('run').e('hasExecutions').e('write').rtn()
//! ```
//!
//! ```sh
//! cargo run --release --example gtravel_shell            # interactive
//! cargo run --release --example gtravel_shell -- "v(0).e('run')"
//! ```

use graphtrek_suite::prelude::*;
use std::io::{BufRead, Write};

fn main() {
    let d = gt_darshan::generate(&DarshanConfig::small());
    let dir = std::env::temp_dir().join(format!("graphtrek-shell-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cluster = Cluster::build(
        &d.graph,
        ClusterConfig::new(&dir, 4),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .expect("cluster");
    println!(
        "metadata graph: {} users, {} jobs, {} executions, {} files",
        d.stats.users, d.stats.jobs, d.stats.executions, d.stats.files
    );
    println!(
        "user ids start at {}, jobs at {}, executions at {}, files at {}",
        d.layout.users_start, d.layout.jobs_start, d.layout.execs_start, d.layout.files_start
    );

    let one_shot: Vec<String> = std::env::args().skip(1).collect();
    if !one_shot.is_empty() {
        for q in &one_shot {
            run_query(&cluster, q);
        }
    } else {
        println!("gtravel shell — enter a query, or 'quit'. Example:");
        println!("  v(0).e('run').e('hasExecutions').e('write').rtn()");
        let stdin = std::io::stdin();
        loop {
            print!("gtravel> ");
            std::io::stdout().flush().ok();
            let mut line = String::new();
            if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "quit" || line == "exit" {
                break;
            }
            run_query(&cluster, line);
        }
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

fn run_query(cluster: &Cluster, text: &str) {
    match graphtrek_suite::graphtrek::parse::parse(text) {
        Err(e) => eprintln!("  {e}"),
        Ok(q) => match cluster.submit(&q) {
            Err(e) => eprintln!("  traversal failed: {e}"),
            Ok(r) => {
                println!(
                    "  {} vertices in {:?} (executions traced: {})",
                    r.vertices.len(),
                    r.elapsed,
                    r.progress.created
                );
                for (depth, vs) in &r.by_depth {
                    let preview: Vec<String> = vs.iter().take(8).map(|v| v.to_string()).collect();
                    println!(
                        "    depth {depth}: {} vertices [{}{}]",
                        vs.len(),
                        preview.join(", "),
                        if vs.len() > 8 { ", …" } else { "" }
                    );
                }
            }
        },
    }
}
