//! Quickstart: build a tiny HPC metadata graph (Fig. 1 of the paper),
//! bring up a simulated 4-server cluster, and run the paper's §III-A
//! data-auditing traversal on the GraphTrek engine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use graphtrek_suite::prelude::*;

fn main() {
    // ---- 1. A metadata graph like the paper's Fig. 1 -------------------
    //
    //   sam --run{ts}--> job2014 --exe--> app-01
    //                    job2014 --read--> dset-1
    //                    job2014 --write--> dset-2
    //   john --run{ts}--> job2015 --read--> dset-2
    let mut g = InMemoryGraph::new();
    g.add_vertex(Vertex::new(
        1u64,
        "User",
        Props::new().with("name", "sam").with("group", "cgroup"),
    ));
    g.add_vertex(Vertex::new(
        2u64,
        "User",
        Props::new().with("name", "john").with("group", "admin"),
    ));
    g.add_vertex(Vertex::new(
        10u64,
        "Execution",
        Props::new()
            .with("name", "job201405")
            .with("params", "-n 1024"),
    ));
    g.add_vertex(Vertex::new(
        11u64,
        "Execution",
        Props::new().with("name", "job201501"),
    ));
    g.add_vertex(Vertex::new(
        20u64,
        "File",
        Props::new()
            .with("name", "app-01")
            .with("ftype", "executable"),
    ));
    g.add_vertex(Vertex::new(
        21u64,
        "File",
        Props::new()
            .with("name", "dset-1.txt")
            .with("ftype", "text"),
    ));
    g.add_vertex(Vertex::new(
        22u64,
        "File",
        Props::new().with("name", "dset-2.h5").with("ftype", "h5"),
    ));
    g.add_edge(Edge::new(
        1u64,
        "run",
        10u64,
        Props::new().with("ts", 100i64),
    ));
    g.add_edge(Edge::new(
        2u64,
        "run",
        11u64,
        Props::new().with("ts", 900i64),
    ));
    g.add_edge(Edge::new(10u64, "exe", 20u64, Props::new()));
    g.add_edge(Edge::new(
        10u64,
        "read",
        21u64,
        Props::new().with("ts", 101i64),
    ));
    g.add_edge(10u64.pipe_edge(
        "write",
        22u64,
        Props::new().with("ts", 102i64).with("writeSize", 7 << 20),
    ));
    g.add_edge(Edge::new(
        11u64,
        "read",
        22u64,
        Props::new().with("ts", 901i64),
    ));

    // ---- 2. A simulated 4-server cluster running GraphTrek -------------
    let dir = std::env::temp_dir().join(format!("graphtrek-quickstart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 4),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .expect("cluster");
    println!(
        "cluster up: {} servers, engine = {}",
        cluster.n_servers(),
        cluster.engine_kind().label()
    );

    // ---- 3. The §III-A audit query --------------------------------------
    // "Find all files ending in .txt read by sam within a timeframe":
    //   GTravel.v(sam).e('run').ea('start_ts' RANGE [t_s,t_e])
    //          .e('read').va('ftype' EQ 'text').rtn()
    let q = GTravel::v([1u64])
        .e("run")
        .ea(PropFilter::range("ts", 0i64, 500i64))
        .e("read")
        .va(PropFilter::eq("ftype", "text"))
        .rtn();
    let result = cluster.submit(&q).expect("traversal");
    println!(
        "audit query returned {:?} in {:?} (executions created: {})",
        result.vertices, result.elapsed, result.progress.created
    );
    assert_eq!(result.vertices, vec![VertexId(21)]);

    // ---- 4. The §III-A provenance query ---------------------------------
    // "Find the execution whose reads include an h5 file" — returns the
    // *source* executions via rtn().
    let q = GTravel::v_all()
        .va(PropFilter::eq("type", "Execution"))
        .rtn()
        .e("read")
        .va(PropFilter::eq("ftype", "h5"));
    let result = cluster.submit(&q).expect("traversal");
    println!("provenance query returned {:?}", result.vertices);
    assert_eq!(result.vertices, vec![VertexId(11)]);

    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!("done.");
}

/// Tiny helper so the edge list above reads uniformly.
trait PipeEdge {
    fn pipe_edge(self, label: &str, dst: u64, props: Props) -> Edge;
}
impl PipeEdge for u64 {
    fn pipe_edge(self, label: &str, dst: u64, props: Props) -> Edge {
        Edge::new(self, label, dst, props)
    }
}
