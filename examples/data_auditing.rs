//! Data auditing on a synthetic Darshan-style metadata graph — the
//! paper's §VII-D workload: "analyzing the influence of a suspicious user
//! on the system. It lists all files that were written by executions
//! whose input files are suspicious":
//!
//! ```text
//! GTravel.v(suspectUser).e('run').ea('ts', RANGE, [ts, te])  // jobs
//!        .e('hasExecutions')                                 // executions
//!        .e('write')                                         // outputs
//!        .e('readBy')                                        // executions
//!        .e('write').rtn()                                   // outputs
//! ```
//!
//! Runs the same 5-step query on all three engines and prints elapsed
//! times plus the per-server Fig. 7-style visit statistics for GraphTrek.
//!
//! ```sh
//! cargo run --release --example data_auditing
//! ```

use graphtrek_suite::prelude::*;
use gt_kvstore::IoProfile;
use std::time::Duration;

fn main() {
    // ---- synthetic Intrepid-like metadata graph ------------------------
    let cfg = DarshanConfig {
        n_jobs: 600,
        n_files: 2000,
        ..DarshanConfig::small()
    };
    let d = gt_darshan::generate(&cfg);
    println!(
        "metadata graph: {} users, {} jobs, {} executions, {} files, {} edges",
        d.stats.users, d.stats.jobs, d.stats.executions, d.stats.files, d.stats.edges
    );

    // The suspect user and audit window.
    let suspect = d.layout.user(7);
    let (ts, te) = (0i64, cfg.ts_range);
    let query = GTravel::v([suspect])
        .e("run")
        .ea(PropFilter::range("ts", ts, te))
        .e("hasExecutions")
        .e("write")
        .e("readBy")
        .e("write")
        .rtn();

    let n_servers = 8;
    for kind in EngineKind::all() {
        let dir =
            std::env::temp_dir().join(format!("graphtrek-audit-{}-{kind:?}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cluster = Cluster::build(
            &d.graph,
            ClusterConfig::new(&dir, n_servers)
                .io(IoProfile::shared_fs())
                .seal_cold(true),
            EngineConfig::new(kind).net(gt_net::NetConfig::cluster()),
        )
        .expect("cluster");
        let result = cluster
            .submit_opts(&query, Duration::from_secs(120), 0)
            .expect("traversal");
        println!(
            "{:<10} {} influenced output files in {:?}",
            kind.label(),
            result.vertices.len(),
            result.elapsed
        );
        if kind == EngineKind::GraphTrek {
            println!("  per-server visit breakdown (Fig. 7 style):");
            for (s, m) in cluster.metrics().iter().enumerate() {
                println!(
                    "    server {s:>2}: real={:<6} combined={:<6} redundant={:<6} queue-peak={}",
                    m.real_io_visits, m.combined_visits, m.redundant_visits, m.queue_peak
                );
            }
        }
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
