//! Chaos drill — the fault-simulation harness as a runnable demo: a
//! seeded lossy transport (drop/duplicate/delay/reorder) plus a scripted
//! mid-travel server crash, with a watchdog restarting the victim
//! (WAL-backed state replays on reopen). The traversal is verified
//! against the single-threaded oracle and the chaos/retry counters are
//! printed, so you can watch the reliability layer absorb the faults.
//!
//! The whole schedule is a pure function of the seed — rerun with the
//! same seed and the transport makes the same drop/duplicate/delay
//! decisions for every message:
//!
//! ```sh
//! cargo run --release --example chaos_drill          # default seed
//! GT_CHAOS_SEED=1234 cargo run --release --example chaos_drill
//! GT_CHAOS_ENGINE=sync cargo run --release --example chaos_drill
//! ```

use graphtrek_suite::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn main() {
    let seed: u64 = std::env::var("GT_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242);
    let engine = match std::env::var("GT_CHAOS_ENGINE").as_deref() {
        Ok("sync") => EngineKind::Sync,
        Ok("async") => EngineKind::AsyncPlain,
        _ => EngineKind::GraphTrek,
    };
    let n_servers = 3;

    // A layered fan-out graph: every step's frontier spans all servers,
    // so the lossy links and the crash point always have traffic to hit.
    let (layers, width) = (7u64, 48u64);
    let mut g = InMemoryGraph::new();
    for v in 0..layers * width {
        g.add_vertex(Vertex::new(
            v,
            "N",
            Props::new().with("layer", (v / width) as i64),
        ));
    }
    let mut x = seed | 1;
    for layer in 0..layers - 1 {
        for v in layer * width..(layer + 1) * width {
            for _ in 0..4 {
                // splitmix64 step: cheap seeded pseudo-randomness.
                x = x.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(v);
                let dst = (layer + 1) * width + (x >> 33) % width;
                g.add_edge(Edge::new(v, "next", dst, Props::new()));
            }
        }
    }

    let mut q = GTravel::v((0..16u64).collect::<Vec<_>>());
    for s in 0..(layers - 1) as usize {
        q = q.e("next");
        if s == 2 {
            q = q.rtn();
        }
    }

    // 8% drop, 8% duplication, 20% delayed up to 2 ms with reordering,
    // and server 1 dies after absorbing 4 frontier messages at step >= 1.
    let plan = ChaosPlan {
        crashes: vec![CrashPoint::frontier(1, 1, 4)],
        ..ChaosPlan::lossy(seed)
    };
    println!(
        "chaos drill ({}): seed={seed}, drop={:.0}%, dup={:.0}%, delay={:.0}%<= {:?}, reorder={}, crash=server 1",
        engine.label(),
        plan.drop * 100.0,
        plan.duplicate * 100.0,
        plan.delay * 100.0,
        plan.max_delay,
        plan.reorder
    );

    let oracle = graphtrek_suite::graphtrek::oracle::traverse(&g, &q.compile().unwrap());

    let dir = std::env::temp_dir().join(format!("graphtrek-chaos-drill-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, n_servers),
        EngineConfig::new(engine).chaos(plan),
    )
    .expect("cluster");

    // Watchdog: notice the scripted crash and restart the victim (the
    // store reopens from its WAL, the transport fences the old epoch).
    let stop = AtomicBool::new(false);
    let r = std::thread::scope(|s| {
        let watcher = s.spawn(|| {
            while !stop.load(Ordering::SeqCst) {
                for id in 0..n_servers {
                    if cluster.server_crashed(id) {
                        println!("  !! server {id} crashed — restarting");
                        std::thread::sleep(Duration::from_millis(50));
                        // A coordinator failover may restart it first.
                        if cluster.restart_server(id).is_ok() {
                            println!("  !! server {id} back (WAL replayed, new epoch)");
                        } else {
                            assert!(!cluster.server_crashed(id), "server {id} stayed down");
                            println!("  !! server {id} already restarted by failover");
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let r = cluster
            .submit_opts(&q, Duration::from_secs(5), 10)
            .expect("traversal never completed");
        stop.store(true, Ordering::SeqCst);
        watcher.join().unwrap();
        r
    });

    // Verify against the oracle: chaos must never change the answer.
    let got: usize = r.by_depth.values().map(|v| v.len()).sum();
    let want: usize = oracle.by_depth.values().map(|s| s.len()).sum();
    for (d, vs) in &r.by_depth {
        let want_d: Vec<_> = oracle.by_depth[d].iter().copied().collect();
        assert_eq!(vs, &want_d, "depth {d} diverged from oracle");
    }
    println!(
        "result matches oracle exactly: {got} vertices ({want} expected) in {:?}",
        r.elapsed
    );

    println!("\nper-server fault/recovery counters:");
    for (id, m) in cluster.metrics().into_iter().enumerate() {
        println!(
            "  server {id}: crashes={} recoveries={} relay_retries={} \
             redeliveries={} stale_epoch_dropped={}",
            m.crashes, m.recoveries, m.relay_retries, m.redeliveries, m.stale_epoch_dropped
        );
    }
    println!("per-server coordinator-failover counters:");
    for (id, m) in cluster.metrics().into_iter().enumerate() {
        println!(
            "  server {id}: failovers={} ledger_replays={} ledger_events_replayed={} \
             reannounce_msgs={} stale_travel_epoch_dropped={}",
            m.failovers,
            m.ledger_replays,
            m.ledger_events_replayed,
            m.reannounce_msgs,
            m.stale_travel_epoch_dropped
        );
    }
    let net = cluster.net_stats();
    println!(
        "fabric: {} chaos drops, {} chaos duplicates, {} chaos delays, {} coordinator handoffs",
        net.chaos_dropped(),
        net.chaos_duplicated(),
        net.chaos_delayed(),
        net.handoffs()
    );

    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
