//! Straggler storm — the Fig. 11 scenario as a runnable demo: an 8-step
//! traversal over an RMAT graph while three servers suffer transient
//! interference (fixed extra delay on a burst of vertex accesses, §VII-C).
//! Compares Sync-GT and GraphTrek under identical injected delays and
//! prints the asynchronous engine's advantage.
//!
//! ```sh
//! cargo run --release --example straggler_storm
//! ```

use graphtrek_suite::prelude::*;
use gt_kvstore::IoProfile;
use gt_rmat::{generate, random_vertex, RmatConfig};
use std::time::Duration;

fn main() {
    let rmat = RmatConfig {
        scale: 12,
        avg_out_degree: 8,
        attr_bytes: 64,
        ..RmatConfig::rmat1(12)
    };
    println!(
        "generating RMAT graph: 2^{} vertices, avg out-degree {}",
        rmat.scale, rmat.avg_out_degree
    );
    let g = generate(&rmat);
    let stats = gt_rmat::degree_stats(&g);
    println!(
        "  {} vertices / {} edges, max degree {}, top-1% share {:.1}%",
        stats.n_vertices,
        stats.n_edges,
        stats.max_out_degree,
        stats.top1pct_edge_share * 100.0
    );

    let n_servers = 8;
    let source = random_vertex(&rmat, 42);
    let mut q = GTravel::v([source]);
    for _ in 0..8 {
        q = q.e(gt_rmat::RMAT_ELABEL);
    }

    // Identical stragglers for both engines: extra delay on a burst of
    // vertex accesses at steps 1, 3 and 7 on three chosen servers.
    let faults = FaultPlan::round_robin_stragglers(&[1, 3, 5], 8, Duration::from_millis(2), 200);

    let mut elapsed = Vec::new();
    for kind in [EngineKind::Sync, EngineKind::GraphTrek] {
        let dir =
            std::env::temp_dir().join(format!("graphtrek-storm-{}-{kind:?}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, n_servers)
                .io(IoProfile::local_disk())
                .seal_cold(true),
            EngineConfig::new(kind)
                .net(gt_net::NetConfig::cluster())
                .faults(faults.clone()),
        )
        .expect("cluster");
        let r = cluster
            .submit_opts(&q, Duration::from_secs(300), 0)
            .expect("traversal");
        let injected: u64 = cluster.metrics().iter().map(|m| m.injected_delays).sum();
        println!(
            "{:<10} 8-step traversal: {:?} ({} vertices, {} injected delays)",
            kind.label(),
            r.elapsed,
            r.vertices.len(),
            injected
        );
        elapsed.push(r.elapsed);
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
    let speedup = elapsed[0].as_secs_f64() / elapsed[1].as_secs_f64();
    println!(
        "GraphTrek is {speedup:.2}x the synchronous engine under interference \
         (the paper reports ~2x at 32 servers)"
    );
}
