//! Multi-tenant traversal demo: eight concurrent travels — a mix of
//! short interactive probes and deep scans — on one GraphTrek cluster
//! with admission control, weighted fair cross-travel scheduling, and a
//! per-travel cache reservation. Prints a per-tenant accounting table
//! (time-to-admit, latency, I/O splits, queue residency), then an A/B
//! run showing what fair scheduling buys a short travel stuck behind a
//! deep scan compared to arrival-order draining.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use graphtrek_suite::prelude::*;
use gt_rmat::{generate, random_vertex, RmatConfig};
use std::time::Duration;

fn main() {
    let rmat = RmatConfig {
        scale: 11,
        avg_out_degree: 8,
        attr_bytes: 32,
        ..RmatConfig::rmat1(11)
    };
    println!(
        "generating RMAT graph: 2^{} vertices, avg out-degree {}",
        rmat.scale, rmat.avg_out_degree
    );
    let g = generate(&rmat);
    let n_servers = 4;

    // A tenant mix: deep scans (the noisy neighbours) and 1–2-hop
    // probes (the latency-sensitive tenants).
    let mut tenants: Vec<(String, GTravel)> = Vec::new();
    for i in 0..4u64 {
        let src = random_vertex(&rmat, 100 + i);
        let mut q = GTravel::v([src]);
        for _ in 0..6 {
            q = q.e(gt_rmat::RMAT_ELABEL);
        }
        tenants.push((format!("scan-{i} (6 hops)"), q));
    }
    for i in 0..4u64 {
        let src = random_vertex(&rmat, 200 + i);
        let q = GTravel::v([src]).e(gt_rmat::RMAT_ELABEL);
        tenants.push((format!("probe-{i} (1 hop)"), q));
    }

    let dir = std::env::temp_dir().join(format!("graphtrek-mt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, n_servers),
        EngineConfig::new(EngineKind::GraphTrek)
            .max_concurrent_travels(6)
            .cache_reserve_per_travel(1024),
    )
    .expect("cluster");

    println!(
        "\nstarting {} travels on {n_servers} servers (admission limit 6):",
        tenants.len()
    );
    let tickets: Vec<Ticket> = tenants
        .iter()
        .map(|(_, q)| cluster.start(q).expect("start"))
        .collect();
    println!(
        "  in flight: {}, queued for admission: {}",
        cluster.active_travels(),
        cluster.pending_travels()
    );

    println!(
        "\n{:<18} {:>10} {:>10} {:>8} {:>8} {:>8} {:>10}",
        "tenant", "latency", "admit", "real-IO", "redund", "merged", "q-wait/req"
    );
    for ((name, _), t) in tenants.iter().zip(&tickets) {
        let r = cluster.wait(t, Duration::from_secs(300)).expect("travel");
        let m = cluster.travel_metrics(t);
        println!(
            "{:<18} {:>10.2?} {:>10.2?} {:>8} {:>8} {:>8} {:>10}",
            name,
            r.elapsed,
            r.admit_wait,
            m.real_io_visits,
            m.redundant_visits,
            m.combined_visits,
            format!("{:?}", Duration::from_nanos(m.mean_queue_wait_ns())),
        );
    }
    assert_eq!(cluster.active_travels(), 0, "every ticket retired");
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    // A/B: a 1-hop probe submitted behind a deep scan, fair two-level
    // scheduling vs arrival-order draining, identical injected slowness
    // on the scan's deep steps.
    println!("\nshort-travel latency behind a deep scan (straggler-slowed):");
    let probe_src = random_vertex(&rmat, 7);
    let faults = FaultPlan {
        stragglers: (0..n_servers)
            .flat_map(|server| {
                [2u16, 3].iter().map(move |&step| Straggler {
                    server,
                    step,
                    delay: Duration::from_millis(1),
                    count: u64::MAX,
                })
            })
            .collect(),
    };
    let mut latency = Vec::new();
    for (tag, fair) in [("fair", true), ("arrival-order", false)] {
        let dir =
            std::env::temp_dir().join(format!("graphtrek-mt-ab-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut ecfg = EngineConfig::new(EngineKind::GraphTrek).workers(1);
        if !fair {
            ecfg = ecfg.force_merging_queue(false);
        }
        let cluster = Cluster::build(&g, ClusterConfig::new(&dir, 2), ecfg.faults(faults.clone()))
            .expect("cluster");
        // Full-graph scan: a standing backlog of slowed deep-step
        // requests on every server while the probe runs.
        let mut scan = GTravel::v_all();
        for _ in 0..3 {
            scan = scan.e(gt_rmat::RMAT_ELABEL);
        }
        let bg = cluster.start(&scan).expect("scan");
        std::thread::sleep(Duration::from_millis(60));
        let t = cluster
            .start(&GTravel::v([probe_src]).e(gt_rmat::RMAT_ELABEL))
            .expect("probe");
        let r = cluster.wait(&t, Duration::from_secs(300)).expect("probe");
        println!("  {tag:<14} {:?}", r.elapsed);
        latency.push(r.elapsed);
        cluster.cancel(&bg).expect("cancel scan");
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
    if latency[1] > latency[0] {
        println!(
            "  fair scheduling cut the probe's latency {:.1}x",
            latency[1].as_secs_f64() / latency[0].as_secs_f64()
        );
    }
}
