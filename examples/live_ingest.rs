//! Live metadata ingestion — the paper's "online database" requirement:
//! "such a system must support live updates (to ingest production
//! information in real time), low-latency point queries … and
//! large-scale traversals" (§I). This example streams synthetic job
//! events into a *running* cluster while interleaving point queries and
//! audit traversals.
//!
//! ```sh
//! cargo run --release --example live_ingest
//! ```

use graphtrek_suite::prelude::*;
use gt_graph::{Edge, Vertex};
use std::time::Instant;

fn main() {
    // Start from a small pre-loaded metadata graph…
    let d = gt_darshan::generate(&DarshanConfig {
        n_jobs: 50,
        n_files: 300,
        ..DarshanConfig::small()
    });
    let dir = std::env::temp_dir().join(format!("graphtrek-live-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cluster = Cluster::build(
        &d.graph,
        ClusterConfig::new(&dir, 4),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .expect("cluster");
    println!(
        "cluster up with {} vertices; streaming new job events…",
        d.graph.n_vertices()
    );

    // …then ingest a stream of "today's" job events live.
    let base = d.layout.end;
    let user = d.layout.user(0);
    let today = 400_000_000i64;
    let mut ingested = 0usize;
    for j in 0..20u64 {
        let job = base + j * 10;
        let exec = job + 1;
        let outfile = job + 2;
        let n = cluster
            .ingest(
                vec![
                    Vertex::new(job, "Job", Props::new().with("ts", today + j as i64)),
                    Vertex::new(exec, "Execution", Props::new().with("model", "model-live")),
                    Vertex::new(
                        outfile,
                        "File",
                        Props::new()
                            .with("ftype", "h5")
                            .with("name", format!("out-{j}.h5")),
                    ),
                ],
                vec![
                    Edge::new(user, "run", job, Props::new().with("ts", today + j as i64)),
                    Edge::new(job, "hasExecutions", exec, Props::new()),
                    Edge::new(
                        exec,
                        "write",
                        outfile,
                        Props::new().with("ts", today + j as i64),
                    ),
                ],
            )
            .expect("ingest");
        ingested += n;
    }
    println!("ingested {ingested} entities (vertices + edges)");

    // Low-latency point query against freshly written metadata.
    let t = Instant::now();
    let v = cluster
        .get_vertex(VertexId(base + 2))
        .expect("query")
        .expect("present");
    println!(
        "point query: {} ({:?}) in {:?}",
        v.props.get("name").unwrap(),
        v.vtype,
        t.elapsed()
    );

    // And a traversal that can only succeed on the live data: all h5
    // files written today by this user's jobs.
    let q = GTravel::v([user])
        .e("run")
        .ea(PropFilter::range("ts", today, today + 1000))
        .e("hasExecutions")
        .e("write")
        .va(PropFilter::eq("ftype", "h5"))
        .rtn();
    let r = cluster.submit(&q).expect("traversal");
    println!(
        "audit over live data: {} output files from today's jobs ({:?})",
        r.vertices.len(),
        r.elapsed
    );
    assert_eq!(r.vertices.len(), 20);

    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!("done.");
}
