//! Provenance mining with `rtn()` — the First-Provenance-Challenge-style
//! query from §II-B/§III-A: *"Find the execution whose model is A and
//! input files have annotation B"*. The result is the **source**
//! executions, not the destination files, exercising the
//! reporting-destination redirection of §IV-D.
//!
//! Also demonstrates progress reporting (§IV-C) by polling the
//! coordinator while the traversal runs.
//!
//! ```sh
//! cargo run --release --example provenance
//! ```

use graphtrek_suite::prelude::*;
use std::time::Duration;

fn main() {
    let cfg = DarshanConfig {
        n_jobs: 800,
        n_files: 3000,
        avg_reads_per_exec: 2.0,
        ..DarshanConfig::small()
    };
    let d = gt_darshan::generate(&cfg);
    println!(
        "metadata graph: {} executions over {} files",
        d.stats.executions, d.stats.files
    );

    let dir = std::env::temp_dir().join(format!("graphtrek-prov-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cluster = Cluster::build(
        &d.graph,
        ClusterConfig::new(&dir, 8),
        EngineConfig::new(EngineKind::GraphTrek).net(gt_net::NetConfig::cluster()),
    )
    .expect("cluster");

    // §III-A provenance query, verbatim shape:
    //   GTravel.v().va('type', EQ, 'Execution').rtn()
    //          .va('model', EQ, 'A')
    //          .e('read')
    //          .va('annotation', EQ, 'B')
    let q = GTravel::v_all()
        .va(PropFilter::eq("type", "Execution"))
        .rtn()
        .va(PropFilter::eq("model", "model-2"))
        .e("read")
        .va(PropFilter::eq("annotation", "anno-1"));

    let ticket = cluster.start(&q).expect("start");
    // Poll the coordinator's execution-count progress while it runs.
    loop {
        match cluster.progress(&ticket) {
            Ok(p) if p.outstanding() > 0 => {
                println!(
                    "in flight: {} executions outstanding {:?}",
                    p.outstanding(),
                    p.outstanding_by_depth
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            _ => break,
        }
    }
    let result = cluster
        .wait(&ticket, Duration::from_secs(120))
        .expect("wait");

    println!(
        "{} model-2 executions read an anno-1 file (elapsed {:?}, {} executions traced)",
        result.vertices.len(),
        result.elapsed,
        result.progress.created
    );
    // Verify against the single-threaded oracle.
    let want = graphtrek_suite::graphtrek::oracle::traverse(&d.graph, &q.compile().unwrap());
    assert_eq!(
        result.vertices,
        want.all_vertices(),
        "engine matches oracle"
    );
    println!("oracle agrees: {} vertices", want.all_vertices().len());

    // Every returned vertex is, indeed, an execution.
    for v in result.vertices.iter().take(5) {
        let vx = d.graph.vertex(*v).unwrap();
        assert_eq!(vx.vtype, "Execution");
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!("done.");
}
