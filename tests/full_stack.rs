//! Cross-crate integration: generators → partitioned persistent storage →
//! fabric → engines, exercised together the way the benchmark harness and
//! a downstream user would.

use graphtrek_suite::prelude::*;
use gt_kvstore::IoProfile;
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-full-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

#[test]
fn rmat_eight_step_traversal_on_all_engines() {
    let cfg = RmatConfig {
        scale: 9,
        avg_out_degree: 6,
        attr_bytes: 32,
        ..RmatConfig::rmat1(9)
    };
    let g = gt_rmat::generate(&cfg);
    let source = gt_rmat::random_vertex(&cfg, 7);
    let mut q = GTravel::v([source]);
    for _ in 0..8 {
        q = q.e(gt_rmat::RMAT_ELABEL);
    }
    let want = graphtrek_suite::graphtrek::oracle::traverse(&g, &q.compile().unwrap());
    for kind in EngineKind::all() {
        let dir = tmp(&format!("rmat8-{kind:?}"));
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 4).seal_cold(true),
            EngineConfig::new(kind),
        )
        .unwrap();
        let got = cluster.submit(&q).unwrap();
        assert_eq!(got.vertices, want.all_vertices(), "{kind:?} diverged");
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn darshan_provenance_with_typed_source_scan() {
    let d = gt_darshan::generate(&gt_darshan::DarshanConfig::small());
    let q = GTravel::v_all()
        .va(PropFilter::eq("type", "Execution"))
        .rtn()
        .va(PropFilter::eq("model", "model-1"))
        .e("read")
        .va(PropFilter::eq("annotation", "anno-0"));
    let want = graphtrek_suite::graphtrek::oracle::traverse(&d.graph, &q.compile().unwrap());
    assert!(
        !want.all_vertices().is_empty(),
        "workload should produce matches"
    );
    let dir = tmp("darshan-prov");
    let cluster = Cluster::build(
        &d.graph,
        ClusterConfig::new(&dir, 6),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let got = cluster.submit(&q).unwrap();
    assert_eq!(got.vertices, want.all_vertices());
    // All returned vertices are executions.
    for v in &got.vertices {
        assert_eq!(d.graph.vertex(*v).unwrap().vtype, "Execution");
    }
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_start_traversal_hits_disk_everywhere() {
    let cfg = RmatConfig {
        scale: 8,
        avg_out_degree: 4,
        attr_bytes: 16,
        ..RmatConfig::rmat1(8)
    };
    let g = gt_rmat::generate(&cfg);
    let dir = tmp("cold");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 3)
            .io(IoProfile::local_disk())
            .seal_cold(true),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let io_before: u64 = cluster.io_stats().iter().map(|s| s.cold).sum();
    let q = GTravel::v([gt_rmat::random_vertex(&cfg, 1)])
        .e(gt_rmat::RMAT_ELABEL)
        .e(gt_rmat::RMAT_ELABEL)
        .e(gt_rmat::RMAT_ELABEL);
    cluster.submit(&q).unwrap();
    let io_after: u64 = cluster.io_stats().iter().map(|s| s.cold).sum();
    assert!(
        io_after > io_before,
        "cold-start traversal must perform cold reads"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graph_survives_cluster_restart() {
    // The cluster's stores are persistent: rebuilding servers over the
    // same directories (without re-ingesting) serves the same data.
    let cfg = RmatConfig {
        scale: 7,
        avg_out_degree: 4,
        attr_bytes: 8,
        ..RmatConfig::rmat1(7)
    };
    let g = gt_rmat::generate(&cfg);
    let dir = tmp("restart");
    let q = GTravel::v([gt_rmat::random_vertex(&cfg, 3)])
        .e(gt_rmat::RMAT_ELABEL)
        .e(gt_rmat::RMAT_ELABEL);
    let first = {
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, 3).seal_cold(true),
            EngineConfig::new(EngineKind::GraphTrek),
        )
        .unwrap();
        let r = cluster.submit(&q).unwrap();
        cluster.shutdown();
        r
    };
    // Reopen the same stores directly (no reload) and rebuild the cluster.
    let partitioner = gt_graph::EdgeCutPartitioner::new(3);
    let mut partitions = Vec::new();
    for s in 0..3 {
        let store = std::sync::Arc::new(
            gt_kvstore::Store::open(gt_kvstore::StoreConfig::new(
                dir.join(format!("server-{s}")),
            ))
            .unwrap(),
        );
        partitions.push(std::sync::Arc::new(
            gt_graph::GraphPartition::open(store).unwrap(),
        ));
    }
    let cluster = graphtrek_suite::graphtrek::Cluster::from_partitions(
        partitions,
        partitioner,
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .unwrap();
    let again = cluster.submit(&q).unwrap();
    assert_eq!(again.by_depth, first.by_depth);
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engines_agree_under_stragglers_and_latency() {
    let d = gt_darshan::generate(&gt_darshan::DarshanConfig {
        n_jobs: 100,
        n_files: 400,
        ..gt_darshan::DarshanConfig::small()
    });
    let user = d.layout.user(1);
    let q = GTravel::v([user])
        .e("run")
        .e("hasExecutions")
        .e("write")
        .e("readBy")
        .e("write")
        .rtn();
    let faults = FaultPlan::round_robin_stragglers(&[0, 1, 2], 5, Duration::from_micros(100), 40);
    let mut results = Vec::new();
    for kind in EngineKind::all() {
        let dir = tmp(&format!("agree-{kind:?}"));
        let cluster = Cluster::build(
            &d.graph,
            ClusterConfig::new(&dir, 4).io(IoProfile::local_disk()),
            EngineConfig::new(kind)
                .net(gt_net::NetConfig::cluster())
                .faults(faults.clone()),
        )
        .unwrap();
        results.push(cluster.submit(&q).unwrap().vertices);
        cluster.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

#[test]
fn degree_skew_translates_to_server_load_imbalance() {
    // The paper attributes merging gains to servers holding high-degree
    // vertices (§VII-A). Verify the pipeline reproduces that imbalance:
    // per-server real-I/O visit counts should spread noticeably.
    let cfg = RmatConfig {
        scale: 10,
        avg_out_degree: 8,
        attr_bytes: 16,
        ..RmatConfig::rmat1(10)
    };
    let g = gt_rmat::generate(&cfg);
    let stats = gt_rmat::degree_stats(&g);
    assert!(stats.top1pct_edge_share > 0.02);
    let dir = tmp("imbalance");
    let cluster = Cluster::build(
        &g,
        ClusterConfig::new(&dir, 8),
        EngineConfig::new(EngineKind::AsyncPlain),
    )
    .unwrap();
    let mut q = GTravel::v([gt_rmat::random_vertex(&cfg, 11)]);
    for _ in 0..6 {
        q = q.e(gt_rmat::RMAT_ELABEL);
    }
    cluster.submit(&q).unwrap();
    let loads: Vec<u64> = cluster.metrics().iter().map(|m| m.real_io_visits).collect();
    let max = *loads.iter().max().unwrap();
    let min = *loads.iter().min().unwrap();
    assert!(max > 0);
    assert!(
        max - min > max / 20,
        "expected visible load spread, got {loads:?}"
    );
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
