//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses* backed by `std::sync`
//! primitives: non-poisoning `Mutex`/`RwLock` (a poisoned std lock simply
//! panics, matching parking_lot's abort-on-poison-free model closely
//! enough for this codebase) and a `Condvar` whose `wait` takes the guard
//! by `&mut` as parking_lot's does.

use std::sync;

/// Mutual exclusion primitive (non-poisoning facade over [`sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`]. Holds the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take it by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }),
        }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable whose `wait` reacquires through the same guard,
/// parking_lot-style.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's mutex and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already waiting");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`. Returns `true`
    /// when the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let g = guard.inner.take().expect("guard already waiting");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        res.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock (non-poisoning facade over [`sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
