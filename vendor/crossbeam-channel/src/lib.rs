//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! Implements the unbounded MPMC channel subset this workspace uses
//! (`unbounded`, cloneable `Sender`/`Receiver`, `recv`, `recv_timeout`,
//! `try_recv`, `len`) over a `Mutex<VecDeque>` + `Condvar`. Disconnection
//! semantics follow crossbeam: receives fail only once every sender is
//! gone *and* the queue is drained; sends fail once every receiver is
//! gone.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`]: every receiver is gone; the
/// unsent message is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`]: channel empty and disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// Channel empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and every sender is gone.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    cond: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Sending half; cloneable (MPMC).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cond: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake blocked receivers so they observe
            // disconnection.
            let _g = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            self.shared.cond.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::Relaxed);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

impl<T> Sender<T> {
    /// Enqueue `value`; never blocks. Fails only when every receiver has
    /// been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(value);
        drop(q);
        self.shared.cond.notify_one();
        Ok(())
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    fn disconnected(&self) -> bool {
        self.shared.senders.load(Ordering::Acquire) == 0
    }

    /// Block until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(RecvError);
            }
            q = self.shared.cond.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, res) = self
                .shared
                .cond
                .wait_timeout(q, left)
                .unwrap_or_else(|p| p.into_inner());
            q = g;
            if res.timed_out() && q.is_empty() {
                return if self.disconnected() {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        match q.pop_front() {
            Some(v) => Ok(v),
            None if self.disconnected() => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7), "queued message survives sender drop");
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_threads() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = [rx, rx2]
            .into_iter()
            .map(|rx| std::thread::spawn(move || std::iter::from_fn(|| rx.recv().ok()).count()))
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
