//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset the bench targets use: `Criterion`,
//! `benchmark_group` → `sample_size`/`bench_function`/`finish`, `Bencher::iter`,
//! and the `criterion_group!`/`criterion_main!` macros. Instead of
//! criterion's statistical machinery it runs each closure
//! `sample_size` times after one warm-up and prints the mean
//! wall-clock per iteration — enough to eyeball regressions offline.

use std::time::{Duration, Instant};

/// Benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 20,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed_ns: 0,
            measured: 0,
        };
        f(&mut b);
        if b.measured == 0 {
            eprintln!("  {}/{id}: no iterations measured", self.name);
        } else {
            let mean = b.elapsed_ns as f64 / b.measured as f64;
            eprintln!(
                "  {}/{id}: mean {:.3} ms over {} iters",
                self.name,
                mean / 1e6,
                b.measured
            );
        }
        self
    }

    /// End the group (printing side only; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Timer handle: runs the measured closure.
pub struct Bencher {
    iters: usize,
    elapsed_ns: u128,
    measured: usize,
}

impl Bencher {
    /// Measure `f` over the group's sample size (plus one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.iters {
            let t = Instant::now();
            std::hint::black_box(f());
            self.elapsed_ns += t.elapsed().as_nanos();
            self.measured += 1;
        }
    }

    /// Caller-timed measurement: `f` receives the iteration count and
    /// returns the total elapsed time for those iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        let d = f(self.iters as u64);
        self.elapsed_ns += d.as_nanos();
        self.measured += self.iters;
    }
}

/// Prevent the optimizer from deleting a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions under one name for `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running each `criterion_group!` bundle.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closure_expected_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        let mut calls = 0usize;
        g.sample_size(5).bench_function("count", |b| {
            b.iter(|| calls += 1);
        });
        g.finish();
        assert_eq!(calls, 6, "one warm-up plus sample_size measured iters");
    }
}
