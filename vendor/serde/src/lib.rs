//! Offline stand-in for the `serde` crate.
//!
//! This workspace only uses serde as a derive marker (`#[derive(Serialize,
//! Deserialize)]`) plus one `serde_json::to_vec_pretty` call in the bench
//! repro binary. The stand-in therefore makes `Serialize`/`Deserialize`
//! marker traits that every type satisfies, and the companion
//! `serde_derive` macros expand to nothing. No actual data-format
//! machinery exists here; `serde_json`'s stand-in renders via `Debug`.

/// Marker trait: "this type can be serialized". Blanket-satisfied.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait: "this type can be deserialized". Blanket-satisfied.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub mod de {
    /// Marker for types deserializable without borrowing input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
