//! Offline stand-in for `serde_json`.
//!
//! The workspace's only call site serializes bench repro records for
//! human inspection. With no network access to fetch the real crate,
//! this stand-in renders values via `Debug` pretty-printing (`{:#?}`) —
//! structured and diffable, though not strict JSON — and documents that
//! in the artifact's first line.

use std::fmt;

/// Serialization error (the Debug renderer is infallible; this exists to
/// keep call-site signatures identical to the real crate).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Render `value` as pretty-printed bytes.
///
/// Uses `{:#?}` instead of real JSON; the `Debug` bound (absent from the
/// real crate) is what lets this work without serde's data model.
pub fn to_vec_pretty<T: ?Sized + serde::Serialize + fmt::Debug>(value: &T) -> Result<Vec<u8>> {
    Ok(format!("{value:#?}\n").into_bytes())
}

/// Render `value` as a pretty-printed string.
pub fn to_string_pretty<T: ?Sized + serde::Serialize + fmt::Debug>(value: &T) -> Result<String> {
    Ok(format!("{value:#?}\n"))
}

#[cfg(test)]
mod tests {
    #[derive(Debug)]
    #[allow(dead_code)] // fields read only through the Debug impl
    struct Rec {
        name: &'static str,
        n: u32,
    }

    #[test]
    fn renders_structs() {
        let out = super::to_vec_pretty(&[Rec { name: "a", n: 1 }]).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("name: \"a\""));
        assert!(s.contains("n: 1"));
    }
}
