//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` here is an immutable, cheaply-cloneable byte buffer backed by
//! `Arc<[u8]>` — the subset of the real crate's semantics (shared
//! ownership, `Deref<Target = [u8]>`, cheap `Clone`) that this workspace
//! relies on. No `BytesMut`, no zero-copy slicing.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Buffer over static data (copied once into shared storage).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: Arc::from(s.into_bytes()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes {
            data: Arc::from(s.as_bytes()),
        }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &**self == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construct_and_compare() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        let c = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(&a[..], b"abc");
        assert_eq!(a.len(), 3);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn debug_escapes() {
        let a = Bytes::from_static(b"a\n\x01");
        assert_eq!(format!("{a:?}"), "b\"a\\n\\x01\"");
    }
}
