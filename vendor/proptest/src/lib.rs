//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/`boxed`,
//! range/tuple/`Just` strategies, `collection::vec`, `option::{of,
//! weighted}`, `bool::weighted`, `any::<T>()` for integers and bool, the
//! `prop_oneof!` union, and the `proptest!`/`prop_assert!`/
//! `prop_assert_eq!` macros backed by a deterministic runner.
//!
//! Differences from the real crate, deliberately accepted for an
//! offline build:
//! - **No shrinking.** A failing case reports its inputs (every strategy
//!   value is `Debug`) and the case index; inputs are reproducible
//!   because the per-case RNG seed is a pure function of the test name
//!   and case index.
//! - **No failure persistence files.** Re-running replays the identical
//!   case sequence anyway.
//! - `PROPTEST_CASES` env var is honoured as an override, like the real
//!   crate.

pub mod strategy {
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Deterministic RNG threaded through strategy sampling.
    pub type TestRng = rand::rngs::SmallRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generate a value, then generate from a strategy derived from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    #[doc(hidden)]
    pub trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy, produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Weighted choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V: Debug> Union<V> {
        /// Build from `(weight, strategy)` arms; weights need not sum to
        /// anything in particular but must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof!: all weights are zero");
            Union { arms, total }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                let w = *w as u64;
                if pick < w {
                    return s.dyn_generate(rng);
                }
                pick -= w;
            }
            unreachable!("weight bookkeeping out of sync")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

    /// String strategy from a simplified regex pattern, like the real
    /// crate's `impl Strategy for &str`. Supported syntax: literal
    /// characters, `[...]` character classes with `a-z` ranges (a `-`
    /// first or last in the class is literal), and `{n}` / `{lo,hi}`
    /// repetition. That covers every pattern in this workspace's tests.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            if chars[i] == '\\' && i + 1 < chars.len() {
                set.push(chars[i + 1]);
                i += 2;
            } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "bad range {lo}-{hi} in pattern class");
                for c in lo..=hi {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(chars[i]);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated [class] in pattern");
        (set, i + 1) // skip ']'
    }

    fn parse_repeat(chars: &[char], i: usize) -> (usize, usize, usize) {
        if i >= chars.len() || chars[i] != '{' {
            return (1, 1, i);
        }
        let close = chars[i..]
            .iter()
            .position(|&c| c == '}')
            .expect("unterminated {repeat} in pattern")
            + i;
        let body: String = chars[i + 1..close].iter().collect();
        let (lo, hi) = match body.split_once(',') {
            Some((a, b)) => (
                a.trim().parse().expect("bad repeat lower bound"),
                b.trim().parse().expect("bad repeat upper bound"),
            ),
            None => {
                let n = body.trim().parse().expect("bad repeat count");
                (n, n)
            }
        };
        (lo, hi, close + 1)
    }

    fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1);
                    i = next;
                    set
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(!choices.is_empty(), "empty character class in pattern");
            let (lo, hi, next) = parse_repeat(&chars, i);
            i = next;
            let n = rng.gen_range(lo..=hi);
            for _ in 0..n {
                out.push(choices[rng.gen_range(0..choices.len())]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use std::fmt::Debug;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized + Debug {
        /// The strategy type [`any`] returns.
        type Strategy: Strategy<Value = Self>;
        /// The full-domain strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy over every value of `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = crate::bool::Weighted;
        fn arbitrary() -> Self::Strategy {
            crate::bool::weighted(0.5)
        }
    }

    /// Full-domain `f64` strategy: uniform over bit patterns (includes
    /// infinities and NaN, as the real crate's `any::<f64>()` does).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyF64;

    impl Strategy for AnyF64 {
        type Value = f64;
        fn generate(&self, rng: &mut super::strategy::TestRng) -> f64 {
            f64::from_bits(rand::RngCore::next_u64(rng))
        }
    }

    impl Arbitrary for f64 {
        type Strategy = AnyF64;
        fn arbitrary() -> Self::Strategy {
            AnyF64
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size: empty range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy yielding `Vec`s of `element` draws.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy yielding `BTreeMap`s; key collisions shrink the map, as
    /// with the real crate.
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    /// `BTreeMap` strategy with entry count drawn from `size`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }
}

pub mod option {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding `Some(inner)` with probability `p`.
    pub struct OptionStrategy<S> {
        inner: S,
        p: f64,
    }

    /// `Option` strategy with the real crate's default Some-probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }

    /// `Option` strategy: `Some` with probability `p`.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner, p }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(self.p) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod bool {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy yielding `true` with fixed probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    /// `bool` strategy: `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(self.p)
        }
    }
}

pub mod test_runner {
    use super::strategy::TestRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Runner configuration; only `cases` matters to this stand-in.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for source compatibility; rejection sampling is not
        /// implemented.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 0,
            }
        }
    }

    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Property violated.
        Fail(String),
        /// Input rejected (unused by this workspace, kept for parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic case runner behind the `proptest!` macro.
    pub struct TestRunner {
        cases: u32,
        name_hash: u64,
    }

    impl TestRunner {
        /// Build a runner for the named property.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(config.cases);
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRunner {
                cases,
                name_hash: h,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// RNG for one case — a pure function of (test name, case index),
        /// so any failure replays exactly on rerun.
        pub fn rng_for_case(&self, case: u32) -> TestRng {
            TestRng::seed_from_u64(self.name_hash ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15))
        }
    }

    /// Prints case inputs when the property body panics (since there is
    /// no catch-and-shrink machinery, this is the failure diagnostics).
    pub struct PanicContext {
        desc: String,
        armed: bool,
    }

    impl PanicContext {
        /// Arm a context describing the current case.
        pub fn new(desc: String) -> Self {
            PanicContext { desc, armed: true }
        }

        /// Disarm after the case passes.
        pub fn disarm(&mut self) {
            self.armed = false;
        }
    }

    impl Drop for PanicContext {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!("proptest case inputs at panic: {}", self.desc);
            }
        }
    }
}

/// Everything the tests `use proptest::prelude::*` for.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run property tests: `proptest! { #![proptest_config(..)] #[test] fn p(x in s) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let desc = format!(
                    concat!("case ", "{}", $(": ", stringify!($arg), " = {:?}"),+),
                    case $(, &$arg)+
                );
                let mut ctx = $crate::test_runner::PanicContext::new(desc.clone());
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                ctx.disarm();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property {} failed: {}\n{}\n(offline proptest stand-in: no shrinking; case is replayed deterministically on rerun)",
                        stringify!($name), e, desc
                    );
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} != {:?}: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {:?} == {:?}: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// Weighted (or unweighted) union of strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    #[test]
    fn strategies_compose() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = (1u64..4, crate::collection::vec(0i64..10, 2..5))
            .prop_map(|(n, v)| (n, v.len()))
            .prop_flat_map(|(n, len)| (Just(n), Just(len), 0usize..len));
        for _ in 0..200 {
            let (n, len, i) = s.generate(&mut rng);
            assert!((1..4).contains(&n));
            assert!((2..5).contains(&len));
            assert!(i < len);
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let mut rng = TestRng::seed_from_u64(11);
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 800, "expected ~900 trues, got {trues}");
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        let cfg = ProptestConfig {
            cases: 4,
            ..ProptestConfig::default()
        };
        let r1 = crate::test_runner::TestRunner::new(cfg.clone(), "p");
        let r2 = crate::test_runner::TestRunner::new(cfg, "p");
        use rand::Rng;
        assert_eq!(
            r1.rng_for_case(2).gen_range(0u64..1_000_000),
            r2.rng_for_case(2).gen_range(0u64..1_000_000)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_args(x in 0u32..10, v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(x, x, "reflexivity for {}", x);
        }
    }
}
