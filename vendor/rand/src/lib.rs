//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! Provides `rngs::SmallRng` (xoshiro256++ seeded through splitmix64 —
//! deterministic per seed, which is all the workspace's fixed-seed tests
//! require), `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range}`
//! for integer and float `Range`/`RangeInclusive` bounds.

use std::ops::{Range, RangeInclusive};

/// Core RNG abstraction: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from ranges handed to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Values samplable "from the standard distribution" via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// User-facing RNG methods; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draw from the standard distribution (e.g. `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast RNG: xoshiro256++ with splitmix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = super::splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 {
                    // Full u128-width range: every draw is in range.
                    return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $t;
                }
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / ((1u64 << $bits) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f64 => 53, f32 => 24);

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let a_draws: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let c_draws: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_ne!(a_draws, c_draws);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
            let e = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&e));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            let v = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&v));
        }
    }
}
